"""D-SEQ: distributed FSM with sequence representation (Sec. V).

D-SEQ partitions the output space by pivot item and communicates *input
sequences* (rewritten to drop irrelevant borders) to the partitions of their
pivot items.  Each partition then runs the pivot-aware DESQ-DFS local miner.

The three enhancements evaluated in Fig. 10a are individually switchable:

* ``use_grid``       -- pivot search via the position–state grid instead of
                        enumerating accepting runs;
* ``use_rewriting``  -- trim leading/trailing irrelevant positions;
* ``use_early_stopping`` -- drop sequences from projected databases once they
                        can no longer produce the pivot item.

Two performance layers sit underneath (both with debugging references):

* ``grid`` selects the position–state grid engine — ``"flat"`` (the columnar
  :class:`~repro.core.grid_engine.FlatPivotGrid`, default) or ``"legacy"``
  (the interpreted :class:`~repro.core.pivot_search.PositionStateGrid`); grids
  are memoized per worker (:func:`~repro.core.grid_engine.cached_grid`), so a
  sequence repeating across chunks, or a rewritten sequence landing in several
  partitions, builds its grid once;
* ``dedup`` mines the corpus's
  :meth:`~repro.sequences.store.EncodedSequenceStore.unique_view`: one
  weighted record per distinct input sequence, so map work drops
  proportionally to duplication instead of only deduplicating post-shuffle in
  the combiner.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.core.grid_engine import GridMemoWarmup, cached_grid, normalize_grid
from repro.core.local_mining import DesqDfsMiner
from repro.core.pivot_search import pivots_by_run_enumeration
from repro.core.prefix_batch import batched_grids, normalize_map_batching
from repro.core.results import MiningResult
from repro.core.rewriting import rewrite_for_pivot
from repro.dictionary import Dictionary
from repro.errors import CandidateExplosionError
from repro.fst import DEFAULT_MAX_RUNS, Fst, MiningKernel, ensure_kernel, make_kernel
from repro.mapreduce import (
    Cluster,
    ClusterConfig,
    MapReduceJob,
    resolve_cluster,
)
from repro.patex import PatEx
from repro.sequences import (
    SequenceDatabase,
    as_mining_records,
    fold_weighted_values,
    record_parts,
)


class DSeqJob(MapReduceJob):
    """The MapReduce job run by :class:`DSeqMiner`."""

    use_combiner = True

    def __init__(
        self,
        fst: Fst | MiningKernel,
        dictionary: Dictionary | None = None,
        sigma: int = 1,
        use_grid: bool = True,
        use_rewriting: bool = True,
        use_early_stopping: bool = True,
        max_runs: int = DEFAULT_MAX_RUNS,
        grid: str | None = None,
        map_batching: str | None = None,
    ) -> None:
        kernel = ensure_kernel(fst, dictionary)
        self.kernel = kernel
        self.fst = kernel.fst
        self.dictionary = kernel.dictionary
        self.sigma = sigma
        self.use_grid = use_grid
        self.use_rewriting = use_rewriting
        self.use_early_stopping = use_early_stopping
        self.max_runs = max_runs
        self.grid = normalize_grid(grid)
        self.map_batching = normalize_map_batching(map_batching)
        self.max_frequent_fid = self.dictionary.largest_frequent_fid(sigma)

    def worker_warmup(self):
        """Ship the kernel and the per-worker grid-memo sizing to the pool."""
        return GridMemoWarmup(self.kernel)

    def _grid_for(self, sequence: tuple[int, ...], span_hash: int | None = None):
        return cached_grid(
            self.kernel,
            sequence,
            max_frequent_fid=self.max_frequent_fid,
            grid=self.grid,
            span_hash=span_hash,
        )

    # ------------------------------------------------------------------- map
    def map(self, record) -> Iterable[tuple[int, tuple]]:
        """Send (rewritten) ``record`` to the partitions of its pivot items.

        Plain records are mined with weight 1;
        :class:`~repro.sequences.store.WeightedSequence` records (the
        corpus-level dedup) carry their multiplicity along with the rewritten
        representation so the combiner and reducer count them correctly.
        """
        yield from self._map_record(record)

    def map_records(self, records, counters: dict | None = None):
        """Map a chunk, trie-batching the grid builds when configured.

        With ``map_batching="trie"`` (and the flat grid engine in use) the
        chunk's unique sequences are loaded into one prefix trie and every
        grid is snapshotted out of the shared forward state
        (:func:`~repro.core.prefix_batch.batched_grids`); each record is then
        mapped against its prebuilt grid.  Emission order and content are
        exactly the per-record path's, so batching is invisible on the wire.
        """
        if self.map_batching != "trie" or self.grid != "flat" or not (
            self.use_grid or self.use_rewriting
        ):
            yield from super().map_records(records, counters)
            return
        records = list(records)
        grids = batched_grids(
            self.kernel,
            (record_parts(record)[0] for record in records),
            max_frequent_fid=self.max_frequent_fid,
            counters=counters,
        )
        for record in records:
            sequence, _weight = record_parts(record)
            yield from self._map_record(record, built_grid=grids[sequence])

    def _map_record(self, record, built_grid=None) -> Iterable[tuple[int, tuple]]:
        sequence, weight = record_parts(record)
        grid = built_grid
        if grid is None and (self.use_grid or self.use_rewriting):
            grid = self._grid_for(sequence, getattr(record, "span_hash", None))
        if self.use_grid:
            pivots = grid.pivot_items()
        else:
            try:
                pivots = pivots_by_run_enumeration(
                    self.kernel,
                    sequence,
                    max_frequent_fid=self.max_frequent_fid,
                    max_runs=self.max_runs,
                )
            except CandidateExplosionError:
                # Without the grid, run enumeration can explode; D-SEQ then
                # falls back to the grid for this sequence (the ablation in
                # Fig. 10a measures the cost of reaching this point).
                if grid is None:
                    grid = self._grid_for(sequence, getattr(record, "span_hash", None))
                pivots = grid.pivot_items()
        for pivot in pivots:
            if self.use_rewriting:
                representation = rewrite_for_pivot(grid, pivot)
            else:
                representation = sequence
            if weight == 1:
                yield pivot, representation
            else:
                yield pivot, (representation, weight)

    # --------------------------------------------------------------- combine
    def combine(
        self, key: int, values: list
    ) -> Iterable[tuple[int, tuple[tuple[int, ...], int]]]:
        """Aggregate identical (rewritten) sequences into weighted records.

        Values are bare representations (weight 1) or ``(representation,
        weight)`` pairs from deduplicated input; totals are emitted in
        first-occurrence order, exactly like the pre-dedup ``Counter`` fold.
        """
        for representation, weight in fold_weighted_values(values).items():
            yield key, (representation, weight)

    # ---------------------------------------------------------------- reduce
    def reduce(
        self, key: int, values: list[tuple[tuple[int, ...], int]]
    ) -> Iterable[tuple[tuple[int, ...], int]]:
        """Mine partition ``key`` with the pivot-aware DESQ-DFS miner."""
        sequences = [sequence for sequence, _weight in values]
        weights = [weight for _sequence, weight in values]
        miner = DesqDfsMiner(
            self.kernel,
            None,
            self.sigma,
            pivot=key,
            use_early_stopping=self.use_early_stopping,
            grid=self.grid,
            map_batching=self.map_batching,
        )
        patterns = miner.mine(sequences, weights)
        yield from patterns.items()

    # ------------------------------------------------------------ accounting
    def record_size(self, key: int, value) -> int:
        """Bytes charged per shuffled record: pivot + weight + one int per item."""
        sequence, _weight = value
        return 8 + 4 * len(sequence)


class DSeqMiner:
    """Public interface of the D-SEQ algorithm.

    Example::

        miner = DSeqMiner(patex, sigma=2, dictionary=dictionary)
        result = miner.mine(database)

    The execution substrate is one :class:`~repro.mapreduce.ClusterConfig`
    passed as ``cluster=`` (which then fully specifies the run); the legacy
    ``backend=``/``codec=``/``spill_budget_bytes=`` keywords were removed
    after their deprecation cycle (see the README's migration table).
    ``dedup=False`` disables the corpus-level unique-sequence pass (the
    debugging reference: results are byte-identical either way).
    """

    algorithm_name = "D-SEQ"

    def __init__(
        self,
        patex: PatEx | str,
        sigma: int,
        dictionary: Dictionary,
        use_grid: bool = True,
        use_rewriting: bool = True,
        use_early_stopping: bool = True,
        num_workers: int = 4,
        max_runs: int = DEFAULT_MAX_RUNS,
        kernel: str | None = None,
        grid: str | None = None,
        partitioner: str | None = None,
        map_batching: str | None = None,
        dedup: bool = True,
        cluster: ClusterConfig | str | Cluster | None = None,
    ) -> None:
        self.patex = PatEx(patex) if isinstance(patex, str) else patex
        self.sigma = sigma
        self.dictionary = dictionary
        self.use_grid = use_grid
        self.use_rewriting = use_rewriting
        self.use_early_stopping = use_early_stopping
        self.max_runs = max_runs
        self.dedup = dedup
        self.cluster = ClusterConfig.resolve(
            cluster,
            num_workers=num_workers,
            kernel=kernel,
            grid=grid,
            partitioner=partitioner,
            map_batching=map_batching,
        )

    def mine(self, database: SequenceDatabase | Sequence[Sequence[int]]) -> MiningResult:
        """Mine all frequent patterns of ``database`` under the constraint."""
        fst = self.patex.compile(self.dictionary)
        kernel = make_kernel(fst, self.dictionary, self.cluster.kernel_name)
        job = DSeqJob(
            kernel,
            sigma=self.sigma,
            use_grid=self.use_grid,
            use_rewriting=self.use_rewriting,
            use_early_stopping=self.use_early_stopping,
            max_runs=self.max_runs,
            grid=self.cluster.grid_name,
            map_batching=self.cluster.map_batching_name,
        )
        records = as_mining_records(database, dedup=self.dedup)
        cluster = resolve_cluster(self.cluster)
        # Deferred import: repro.core.balance imports this module's job.
        from repro.core.balance import attach_partition_plan

        attach_partition_plan(self, job, records, cluster)
        result = cluster.run(job, records)
        patterns = dict(result.outputs)
        return MiningResult(patterns, result.metrics, algorithm=self.algorithm_name)
