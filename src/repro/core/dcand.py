"""D-CAND: distributed FSM with candidate representation (Sec. VI).

D-CAND enumerates the accepting runs of every input sequence in the map phase,
splits each run's candidate subsequences by pivot item, compresses the
per-pivot candidate sets into minimized NFAs, and ships the serialized NFAs to
the partitions.  Identical NFAs are aggregated into weighted NFAs by a
combiner.  Local mining simply counts on the weighted NFAs.

With corpus-level dedup (``dedup=True``, the default) the run enumeration —
the dominant map cost — executes once per *distinct* input sequence: the map
input is the database's
:meth:`~repro.sequences.store.EncodedSequenceStore.unique_view` and each
record's multiplicity rides along with its serialized NFAs.

The two enhancements evaluated in Fig. 10b are switchable:

* ``minimize_nfas``  -- minimize the per-pivot tries before serializing;
* ``aggregate_nfas`` -- aggregate identical serialized NFAs with a combiner.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.core.nfa_mining import NfaLocalMiner
from repro.core.pivot_search import pivots_of_output_sets
from repro.core.prefix_batch import batched_accepting, normalize_map_batching
from repro.core.results import MiningResult
from repro.dictionary import EPSILON_FID, Dictionary
from repro.fst import (
    DEFAULT_MAX_RUNS,
    Fst,
    MiningKernel,
    accepting_runs,
    ensure_kernel,
    make_kernel,
    run_output_sets,
)
from repro.mapreduce import (
    Cluster,
    ClusterConfig,
    MapReduceJob,
    resolve_cluster,
)
from repro.nfa import TrieBuilder, deserialize, serialize
from repro.patex import PatEx
from repro.sequences import (
    SequenceDatabase,
    as_mining_records,
    fold_weighted_values,
    record_parts,
    weighted_value_parts,
)


class DCandJob(MapReduceJob):
    """The MapReduce job run by :class:`DCandMiner`."""

    def __init__(
        self,
        fst: Fst | MiningKernel,
        dictionary: Dictionary | None = None,
        sigma: int = 1,
        minimize_nfas: bool = True,
        aggregate_nfas: bool = True,
        max_runs: int = DEFAULT_MAX_RUNS,
        map_batching: str | None = None,
    ) -> None:
        kernel = ensure_kernel(fst, dictionary)
        self.kernel = kernel
        self.fst = kernel.fst
        self.dictionary = kernel.dictionary
        self.sigma = sigma
        self.minimize_nfas = minimize_nfas
        self.aggregate_nfas = aggregate_nfas
        self.max_runs = max_runs
        self.map_batching = normalize_map_batching(map_batching)
        self.max_frequent_fid = self.dictionary.largest_frequent_fid(sigma)
        self.use_combiner = aggregate_nfas

    # ------------------------------------------------------------------- map
    def map(self, record) -> Iterable[tuple[int, bytes | tuple[bytes, int]]]:
        """Build one NFA per pivot item of ``record`` and emit it serialized.

        Plain records ship their NFAs bare (weight 1);
        :class:`~repro.sequences.store.WeightedSequence` records (corpus-level
        dedup) ship ``(payload, weight)`` pairs, so one run enumeration serves
        every duplicate of the sequence.
        """
        sequence, weight = record_parts(record)
        builders: dict[int, TrieBuilder] = {}
        for run in accepting_runs(self.kernel, sequence, max_runs=self.max_runs):
            output_sets = run_output_sets(
                run, sequence, self.kernel, self.max_frequent_fid
            )
            if any(not outputs for outputs in output_sets):
                # Some captured output set lost all items to the frequency
                # filter; no frequent candidate passes through this run.
                continue
            pivots = pivots_of_output_sets(output_sets)
            for pivot in pivots:
                restricted = self._restrict(output_sets, pivot)
                if restricted is None:
                    continue
                builder = builders.setdefault(pivot, TrieBuilder())
                builder.add_run(restricted)
        for pivot, builder in builders.items():
            nfa = builder.minimized() if self.minimize_nfas else builder.trie()
            payload = serialize(nfa)
            yield pivot, payload if weight == 1 else (payload, weight)

    def map_records(self, records, counters: dict | None = None):
        """Map a chunk, trie-batching the accepting prefilter when configured.

        D-CAND's map cost is run enumeration, which starts by discovering
        whether the sequence accepts at all.  With ``map_batching="trie"`` the
        chunk's unique sequences are walked as one prefix trie with a shared
        reachable-state-set simulation
        (:func:`~repro.core.prefix_batch.batched_accepting`); records whose
        sequence cannot accept are skipped before run enumeration.  A
        non-accepting record emits nothing on the per-record path too, so the
        shuffle is byte-identical either way.
        """
        if self.map_batching != "trie":
            yield from super().map_records(records, counters)
            return
        records = list(records)
        accepting = batched_accepting(
            self.kernel,
            (record_parts(record)[0] for record in records),
            counters=counters,
        )
        for record in records:
            sequence, _weight = record_parts(record)
            if not accepting[sequence]:
                continue
            yield from self.map(record)

    @staticmethod
    def _restrict(
        output_sets: Sequence[tuple[int, ...]], pivot: int
    ) -> list[tuple[int, ...]] | None:
        """Keep only items ``<= pivot`` and drop ε sets (Sec. VI-A).

        Returns None if a captured output set loses all items, which cannot
        happen when ``pivot`` is a pivot of the run (defensive guard).
        """
        restricted: list[tuple[int, ...]] = []
        for outputs in output_sets:
            if outputs == (EPSILON_FID,):
                continue
            kept = tuple(item for item in outputs if item != EPSILON_FID and item <= pivot)
            if not kept:
                return None
            restricted.append(kept)
        return restricted

    # --------------------------------------------------------------- combine
    def combine(
        self, key: int, values: list
    ) -> Iterable[tuple[int, tuple[bytes, int]]]:
        """Aggregate identical serialized NFAs into (NFA, weight) pairs.

        Values are bare payloads (weight 1) or ``(payload, weight)`` pairs
        from deduplicated input; totals keep first-occurrence order, exactly
        like the pre-dedup ``Counter`` fold.
        """
        for payload, weight in fold_weighted_values(values).items():
            yield key, (payload, weight)

    # ---------------------------------------------------------------- reduce
    def reduce(self, key: int, values: list) -> Iterable[tuple[tuple[int, ...], int]]:
        """Count candidate occurrences directly on the received NFAs."""
        nfas = []
        weights = []
        for value in values:
            payload, weight = weighted_value_parts(value)
            nfas.append(deserialize(payload))
            weights.append(weight)
        miner = NfaLocalMiner(self.sigma, pivot=key)
        yield from miner.mine(nfas, weights).items()

    # ------------------------------------------------------------ accounting
    def record_size(self, key: int, value) -> int:
        """Bytes charged per shuffled record: pivot (+weight) + NFA payload."""
        if isinstance(value, tuple):
            payload, _weight = value
            return 12 + len(payload)
        return 8 + len(value)


class DCandMiner:
    """Public interface of the D-CAND algorithm.

    Example::

        miner = DCandMiner(patex, sigma=2, dictionary=dictionary)
        result = miner.mine(database)

    The execution substrate is one :class:`~repro.mapreduce.ClusterConfig`
    passed as ``cluster=``; the legacy ``backend=``/``codec=``/
    ``spill_budget_bytes=`` keywords were removed after their deprecation
    cycle (see the README's migration table).  ``dedup=False`` disables the
    corpus-level unique-sequence pass (the debugging reference: results are
    byte-identical either way).
    """

    algorithm_name = "D-CAND"

    def __init__(
        self,
        patex: PatEx | str,
        sigma: int,
        dictionary: Dictionary,
        minimize_nfas: bool = True,
        aggregate_nfas: bool = True,
        num_workers: int = 4,
        max_runs: int = DEFAULT_MAX_RUNS,
        kernel: str | None = None,
        grid: str | None = None,
        partitioner: str | None = None,
        map_batching: str | None = None,
        dedup: bool = True,
        cluster: ClusterConfig | str | Cluster | None = None,
    ) -> None:
        self.patex = PatEx(patex) if isinstance(patex, str) else patex
        self.sigma = sigma
        self.dictionary = dictionary
        self.minimize_nfas = minimize_nfas
        self.aggregate_nfas = aggregate_nfas
        self.max_runs = max_runs
        self.dedup = dedup
        self.cluster = ClusterConfig.resolve(
            cluster,
            num_workers=num_workers,
            kernel=kernel,
            grid=grid,
            partitioner=partitioner,
            map_batching=map_batching,
        )

    def mine(self, database: SequenceDatabase | Sequence[Sequence[int]]) -> MiningResult:
        """Mine all frequent patterns of ``database`` under the constraint."""
        fst = self.patex.compile(self.dictionary)
        kernel = make_kernel(fst, self.dictionary, self.cluster.kernel_name)
        job = DCandJob(
            kernel,
            sigma=self.sigma,
            minimize_nfas=self.minimize_nfas,
            aggregate_nfas=self.aggregate_nfas,
            max_runs=self.max_runs,
            map_batching=self.cluster.map_batching_name,
        )
        records = as_mining_records(database, dedup=self.dedup)
        cluster = resolve_cluster(self.cluster)
        # Deferred import: repro.core.balance imports this module's job.
        from repro.core.balance import attach_partition_plan

        attach_partition_plan(self, job, records, cluster)
        result = cluster.run(job, records)
        patterns = dict(result.outputs)
        return MiningResult(patterns, result.metrics, algorithm=self.algorithm_name)
