"""Pivot search: the ⊕ merge operator and the position–state grid (Sec. V-A).

Determining the set of partitions ``K(T)`` for which an input sequence ``T``
is relevant is the key map-side computation of item-based partitioning.  The
naive approach enumerates the (possibly exponential) candidate set; this
module implements the paper's two ideas:

* the commutative/associative **pivot merge** operator ⊕ (Theorem 1), which
  computes the pivot items of a single run in time linear in the run length;
* the **position–state grid**, a dynamic program over (position, FST state)
  pairs that shares work across the possibly exponential number of accepting
  runs and computes ``K(T)`` in ``O(|T| · |Q| · |Δ|)``.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.dictionary import EPSILON_FID, Dictionary
from repro.errors import CandidateExplosionError
from repro.fst import Fst, MiningKernel, accepting_runs, ensure_kernel, run_output_sets
from repro.fst.fst import Transition


# ----------------------------------------------------------------- pivot merge
def pivot_merge(left: set[int], right: Iterable[int]) -> set[int]:
    """The ⊕ operator: pivot items of the concatenation of two output sets.

    ``U ⊕ Q = {ω ∈ U | ω ≥ min(Q)} ∪ {ω ∈ Q | ω ≥ min(U)}`` with ε (fid 0)
    smaller than every item.  An empty operand annihilates the merge: no
    candidate can pass through an output set that lost all its items to the
    frequency filter.
    """
    right_items = (
        right if isinstance(right, (set, frozenset, tuple, list)) else tuple(right)
    )
    if not left or not right_items:
        return set()
    min_left = min(left)
    min_right = min(right_items)
    merged = {item for item in left if item >= min_right}
    merged.update(item for item in right_items if item >= min_left)
    return merged


def pivots_of_output_sets(output_sets: Iterable[Iterable[int]]) -> set[int]:
    """Pivot items ``K(r)`` of one run, given its (filtered) output sets.

    Implements Theorem 1 by folding ⊕ over the output sets; ε is stripped from
    the final result.  Returns the empty set if any output set is empty.

    The fold filters the accumulator *in place* instead of allocating a fresh
    set per ⊕ step: the merge of two non-empty operands is never empty (it
    always contains the larger of the two maxima), so the only early exit is
    an empty output set.
    """
    accumulator: set[int] = {EPSILON_FID}
    for outputs in output_sets:
        outputs = (
            outputs
            if isinstance(outputs, (set, frozenset, tuple, list))
            else tuple(outputs)
        )
        if not outputs:
            return set()
        min_left = min(accumulator)
        min_right = min(outputs)
        if min_left < min_right:
            accumulator.difference_update(
                [item for item in accumulator if item < min_right]
            )
        for item in outputs:
            if item >= min_left:
                accumulator.add(item)
    accumulator.discard(EPSILON_FID)
    return accumulator


def pivots_by_run_enumeration(
    fst: Fst | MiningKernel,
    sequence: Sequence[int],
    dictionary: Dictionary | None = None,
    max_frequent_fid: int | None = None,
    max_runs: int = 100_000,
) -> set[int]:
    """Pivot search without the grid: enumerate runs and merge their pivots.

    Used by the D-SEQ "no grid" ablation and by D-CAND (which needs the runs
    anyway to build its NFAs).  Raises
    :class:`~repro.errors.CandidateExplosionError` when ``max_runs`` is hit.
    """
    kernel = ensure_kernel(fst, dictionary)
    pivots: set[int] = set()
    for run in accepting_runs(kernel, sequence, max_runs=max_runs):
        output_sets = run_output_sets(run, sequence, kernel, max_frequent_fid)
        pivots.update(pivots_of_output_sets(output_sets))
    return pivots


# ------------------------------------------------------------------------ grid
@dataclass(frozen=True)
class GridEdge:
    """One live edge of the position–state grid.

    The edge consumes the input item at ``position`` (1-based), moving the FST
    from ``source`` to ``target`` via ``transition`` and producing
    ``outputs`` (already frequency-filtered; ``(0,)`` denotes ε).
    """

    position: int
    source: int
    target: int
    transition: Transition
    outputs: tuple[int, ...]

    @property
    def changes_state(self) -> bool:
        return self.source != self.target

    @property
    def produces_items(self) -> bool:
        return self.outputs != (EPSILON_FID,) and bool(self.outputs)


class PositionStateGrid:
    """The position–state grid of one input sequence (Fig. 5b).

    The grid records, for every (position, state) coordinate on an accepting
    run, the live incoming edges and the pivot set ``K(i, q)`` of the partial
    runs ending there.  It is the workhorse of D-SEQ's map phase: pivot
    search, sequence rewriting and the early-stopping heuristic all read it.
    """

    def __init__(
        self,
        fst: Fst | MiningKernel,
        sequence: Sequence[int],
        dictionary: Dictionary | None = None,
        max_frequent_fid: int | None = None,
    ) -> None:
        kernel = ensure_kernel(fst, dictionary)
        self.kernel = kernel
        self.fst = kernel.fst
        self.sequence = tuple(sequence)
        self.dictionary = kernel.dictionary
        self.max_frequent_fid = max_frequent_fid
        self._alive = kernel.reachability_table(self.sequence)
        self._edges: list[list[GridEdge]] = [[] for _ in range(len(self.sequence) + 1)]
        self._pivot_sets: list[dict[int, set[int]]] = [
            {} for _ in range(len(self.sequence) + 1)
        ]
        self._has_accepting_run = (
            self._alive[0][kernel.initial_state]
            if self.sequence
            else kernel.is_final(kernel.initial_state)
        )
        if self._has_accepting_run and self.sequence:
            self._build()

    # ------------------------------------------------------------ construction
    def _build(self) -> None:
        kernel = self.kernel
        sequence = self.sequence
        max_frequent_fid = self.max_frequent_fid
        n = len(sequence)
        reachable = [set() for _ in range(n + 1)]
        reachable[0].add(kernel.initial_state)
        self._pivot_sets[0][kernel.initial_state] = {EPSILON_FID}

        for position in range(1, n + 1):
            item = sequence[position - 1]
            alive_row = self._alive[position]
            for source in reachable[position - 1]:
                source_pivots = self._pivot_sets[position - 1].get(source)
                if source_pivots is None or not source_pivots:
                    continue
                for tid in kernel.matching(source, item):
                    target = kernel.target(tid)
                    if not alive_row[target]:
                        continue
                    outputs = kernel.filtered_outputs(tid, item, max_frequent_fid)
                    edge = GridEdge(
                        position=position,
                        source=source,
                        target=target,
                        transition=kernel.transition(tid),
                        outputs=outputs,
                    )
                    self._edges[position].append(edge)
                    reachable[position].add(target)
                    contribution = pivot_merge(source_pivots, outputs)
                    if contribution:
                        bucket = self._pivot_sets[position].setdefault(target, set())
                        bucket.update(contribution)
                    else:
                        # Keep the coordinate reachable even if no frequent
                        # candidate passes through this particular edge.
                        self._pivot_sets[position].setdefault(target, set())

    # ------------------------------------------------------------------ access
    @property
    def has_accepting_run(self) -> bool:
        """True iff the FST accepts the sequence at all."""
        return self._has_accepting_run

    @property
    def alive(self) -> list[list[bool]]:
        """The kernel's reachability table (shared, read-only by convention)."""
        return self._alive

    def edges_at(self, position: int) -> list[GridEdge]:
        """Live edges consuming the item at 1-based ``position``."""
        return self._edges[position]

    def live_edges(self) -> Iterable[GridEdge]:
        """All live edges in position order."""
        for position in range(1, len(self.sequence) + 1):
            yield from self._edges[position]

    def pivot_set(self, position: int, state: int) -> set[int]:
        """``K(i, q)``: pivots of the partial runs ending at (position, state)."""
        return set(self._pivot_sets[position].get(state, set()))

    def pivot_items(self) -> set[int]:
        """``K(T)``: the pivot items of the whole input sequence."""
        if not self._has_accepting_run:
            return set()
        n = len(self.sequence)
        pivots: set[int] = set()
        for state in self.fst.final_states:
            pivots.update(self._pivot_sets[n].get(state, set()))
        pivots.discard(EPSILON_FID)
        return pivots

    # ------------------------------------------------ rewriting & early stopping
    def relevant_range(self, pivot: int) -> tuple[int, int]:
        """First and last relevant 1-based positions for ``pivot`` (Sec. V-B).

        A position is relevant if some live edge at that position changes the
        FST state or can produce an output item ``<= pivot``.  Positions
        outside the returned range can be dropped from the representation sent
        to partition ``pivot`` without changing its pivot sequences.
        """
        n = len(self.sequence)
        first = None
        last = 0
        for position in range(1, n + 1):
            if self._position_relevant(position, pivot):
                if first is None:
                    first = position
                last = position
        if first is None:
            return 1, n
        return first, last

    def _position_relevant(self, position: int, pivot: int) -> bool:
        for edge in self._edges[position]:
            if edge.changes_state:
                return True
            if edge.produces_items and any(
                output <= pivot for output in edge.outputs if output != EPSILON_FID
            ):
                return True
        return False

    def last_pivot_producing_position(self, pivot: int) -> int:
        """The last 1-based position whose live edges can output ``pivot``.

        Used by the early-stopping heuristic of the pivot-aware local miner:
        an input sequence cannot contribute ``pivot`` to a prefix any more
        once mining has consumed items beyond this position.  Returns 0 when
        no position can produce the pivot.
        """
        for position in range(len(self.sequence), 0, -1):
            for edge in self._edges[position]:
                if pivot in edge.outputs:
                    return position
        return 0


def pivot_items(
    fst: Fst | MiningKernel,
    sequence: Sequence[int],
    dictionary: Dictionary | None = None,
    sigma: int | None = None,
    use_grid: bool = True,
    max_runs: int = 100_000,
    grid: str | None = None,
) -> set[int]:
    """Compute ``K(T)`` with either the grid or run enumeration.

    ``grid`` selects the grid engine (``"flat"``, the default, or
    ``"legacy"`` for this module's reference implementation); see
    :mod:`repro.core.grid_engine`.
    """
    # Imported here: grid_engine builds on this module.
    from repro.core.grid_engine import make_grid

    kernel = ensure_kernel(fst, dictionary)
    max_frequent_fid = (
        kernel.dictionary.largest_frequent_fid(sigma) if sigma is not None else None
    )
    if use_grid:
        return make_grid(
            kernel, sequence, max_frequent_fid=max_frequent_fid, grid=grid
        ).pivot_items()
    try:
        return pivots_by_run_enumeration(
            kernel, sequence, max_frequent_fid=max_frequent_fid, max_runs=max_runs
        )
    except CandidateExplosionError:
        # Fall back to the grid, which never enumerates runs explicitly.
        return make_grid(
            kernel, sequence, max_frequent_fid=max_frequent_fid, grid=grid
        ).pivot_items()
