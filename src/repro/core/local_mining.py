"""Pivot-aware DESQ-DFS local mining (Sec. V-C).

The local miner receives the (possibly rewritten) input sequences of one
partition and mines the frequent pivot sequences for that partition's pivot
item with a pattern-growth search: the current prefix is expanded one output
item at a time, and each search-tree node keeps a projected database of
``(sequence, position, state)`` snapshots that can still produce the prefix
(Fig. 6).

With ``pivot=None`` the same code is the *sequential* DESQ-DFS baseline used
in Table V: it mines all frequent patterns of the given sequences.

All FST probes go through a :class:`~repro.fst.compiled.MiningKernel`; a raw
``(fst, dictionary)`` pair is wrapped in the default (compiled) kernel, whose
memoized matching/output indexes are shared by every sequence and every
search-tree node of a partition.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.dictionary import Dictionary
from repro.errors import MiningError
from repro.fst import Fst, MiningKernel, ensure_kernel
from repro.core.grid_engine import cached_grid, normalize_grid
from repro.core.prefix_batch import batched_grids, normalize_map_batching


class _SequenceState:
    """Per-sequence simulation tables shared by all search-tree nodes."""

    __slots__ = ("sequence", "weight", "alive", "finishable", "last_pivot_position")

    def __init__(
        self,
        sequence: tuple[int, ...],
        weight: int,
        kernel: MiningKernel,
        pivot: int | None,
        max_frequent_fid: int,
        grid: str | None = None,
        built_grid=None,
    ) -> None:
        self.sequence = sequence
        self.weight = weight
        self.alive = kernel.reachability_table(sequence)
        self.finishable = kernel.finishable_table(sequence)
        if pivot is not None:
            # The early-stopping oracle reads the position-state grid; going
            # through the per-worker memo means a rewritten sequence that
            # lands in several partitions builds its grid once per worker.
            # A trie-batched caller hands the prebuilt grid in directly.
            built = built_grid
            if built is None:
                built = cached_grid(
                    kernel, sequence, max_frequent_fid=max_frequent_fid, grid=grid
                )
            self.last_pivot_position = built.last_pivot_producing_position(pivot)
        else:
            self.last_pivot_position = len(sequence)


class DesqDfsMiner:
    """Pattern-growth miner over FST snapshots.

    Parameters
    ----------
    fst, dictionary, sigma:
        The compiled constraint (an :class:`~repro.fst.fst.Fst` or a
        ready-made :class:`~repro.fst.compiled.MiningKernel`), the item
        dictionary (may be None when a kernel is given) and the minimum
        support.
    pivot:
        When given, only pivot sequences for this item are output and the
        search never expands prefixes with items larger than the pivot.
    use_early_stopping:
        Enable the heuristic of Sec. V-C that drops input sequences from a
        projected database once they can no longer contribute the pivot item.
    max_patterns:
        Safety cap on the number of emitted patterns.
    grid:
        The position–state grid engine serving the early-stopping oracle
        (``"flat"``, the default, or ``"legacy"``; see
        :mod:`repro.core.grid_engine`).
    map_batching:
        With ``"trie"`` (and the flat grid engine), the early-stopping grids
        of a partition's sequences are built in one trie-batched pass
        (:func:`~repro.core.prefix_batch.batched_grids`) instead of one
        forward simulation per sequence — rewritten sequences of one pivot
        share long prefixes, so this is where batching pays off twice.
        ``"off"`` (the default) keeps the per-sequence memoized path.
    """

    def __init__(
        self,
        fst: Fst | MiningKernel,
        dictionary: Dictionary | None,
        sigma: int,
        pivot: int | None = None,
        use_early_stopping: bool = True,
        max_patterns: int = 10_000_000,
        grid: str | None = None,
        map_batching: str | None = None,
    ) -> None:
        if sigma < 1:
            raise MiningError(f"sigma must be >= 1, got {sigma}")
        kernel = ensure_kernel(fst, dictionary)
        self.kernel = kernel
        self.fst = kernel.fst
        self.dictionary = kernel.dictionary
        self.sigma = sigma
        self.pivot = pivot
        self.use_early_stopping = use_early_stopping
        self.max_patterns = max_patterns
        self.grid = normalize_grid(grid)
        self.map_batching = normalize_map_batching(map_batching)
        self.max_frequent_fid = self.dictionary.largest_frequent_fid(sigma)

    # --------------------------------------------------------------------- API
    def mine(
        self,
        sequences: Sequence[Sequence[int]],
        weights: Sequence[int] | None = None,
    ) -> dict[tuple[int, ...], int]:
        """Mine the frequent (pivot) sequences of ``sequences``.

        ``weights`` gives the multiplicity of each input sequence (identical
        rewritten sequences may be aggregated upstream); defaults to 1 each.
        """
        if weights is None:
            weights = [1] * len(sequences)
        if len(weights) != len(sequences):
            raise MiningError("weights must align with sequences")

        kernel = self.kernel
        pivot = self.pivot if self.use_early_stopping else None
        built_grids: dict[tuple[int, ...], object] = {}
        if pivot is not None and self.map_batching == "trie" and self.grid == "flat":
            # One trie-batched forward pass builds every early-stopping grid
            # of the partition; duplicates and shared prefixes are simulated
            # once (counters are map-side metrics, not threaded here).
            built_grids = batched_grids(
                kernel,
                (tuple(sequence) for sequence in sequences),
                max_frequent_fid=self.max_frequent_fid,
            )
        states: list[_SequenceState] = []
        root_snapshots: list[set[tuple[int, int]]] = []
        for sequence, weight in zip(sequences, weights):
            sequence = tuple(sequence)
            state = _SequenceState(
                sequence,
                weight,
                kernel,
                pivot,
                self.max_frequent_fid,
                grid=self.grid,
                built_grid=built_grids.get(sequence),
            )
            if state.alive and state.alive[0][kernel.initial_state]:
                states.append(state)
                root_snapshots.append({(0, kernel.initial_state)})
        patterns: dict[tuple[int, ...], int] = {}
        if states:
            projected = list(zip(range(len(states)), root_snapshots))
            self._expand((), projected, states, patterns)
        return patterns

    # --------------------------------------------------------------- expansion
    def _expand(
        self,
        prefix: tuple[int, ...],
        projected: list[tuple[int, set[tuple[int, int]]]],
        states: list[_SequenceState],
        patterns: dict[tuple[int, ...], int],
    ) -> None:
        children: dict[int, dict[int, set[tuple[int, int]]]] = {}
        pivot_missing = self.pivot is not None and self.pivot not in prefix

        for sequence_index, snapshots in projected:
            state = states[sequence_index]
            if (
                self.use_early_stopping
                and pivot_missing
                and state.last_pivot_position == 0
            ):
                continue
            reachable = self._output_steps(state, snapshots, pivot_missing)
            for item, next_snapshots in reachable.items():
                bucket = children.setdefault(item, {})
                bucket.setdefault(sequence_index, set()).update(next_snapshots)

        for item in sorted(children):
            child_projected = children[item]
            prefix_support = sum(
                states[sequence_index].weight for sequence_index in child_projected
            )
            if prefix_support < self.sigma:
                continue
            child_prefix = prefix + (item,)
            support = self._support(child_prefix, child_projected, states)
            if support >= self.sigma and self._should_output(child_prefix):
                if len(patterns) >= self.max_patterns:
                    raise MiningError(
                        f"more than {self.max_patterns} patterns produced; "
                        "lower sigma or tighten the constraint"
                    )
                patterns[child_prefix] = support
            self._expand(
                child_prefix,
                [(index, snapshots) for index, snapshots in child_projected.items()],
                states,
                patterns,
            )

    def _output_steps(
        self,
        state: _SequenceState,
        snapshots: set[tuple[int, int]],
        pivot_missing: bool,
    ) -> dict[int, set[tuple[int, int]]]:
        """All one-item expansions reachable from the given snapshots.

        Follows uncaptured (ε-output) transitions without emitting and stops
        at the first captured transition, which emits each of its (filtered)
        output items.
        """
        kernel = self.kernel
        sequence = state.sequence
        alive = state.alive
        n = len(sequence)
        expansions: dict[int, set[tuple[int, int]]] = {}
        visited: set[tuple[int, int]] = set()
        stack = list(snapshots)
        while stack:
            position, fst_state = stack.pop()
            if (position, fst_state) in visited:
                continue
            visited.add((position, fst_state))
            if position >= n:
                continue
            if (
                self.use_early_stopping
                and pivot_missing
                and position >= state.last_pivot_position
            ):
                # This sequence can no longer produce the pivot item.
                continue
            item = sequence[position]
            next_alive = alive[position + 1]
            for tid in kernel.matching(fst_state, item):
                target = kernel.target(tid)
                if not next_alive[target]:
                    continue
                if not kernel.is_captured(tid):
                    stack.append((position + 1, target))
                    continue
                for output in kernel.outputs(tid, item):
                    if output > self.max_frequent_fid:
                        continue
                    if self.pivot is not None and output > self.pivot:
                        continue
                    expansions.setdefault(output, set()).add((position + 1, target))
        return expansions

    def _support(
        self,
        prefix: tuple[int, ...],
        projected: dict[int, set[tuple[int, int]]],
        states: list[_SequenceState],
    ) -> int:
        """Weighted number of sequences for which ``prefix`` is a full candidate."""
        support = 0
        for sequence_index, snapshots in projected.items():
            state = states[sequence_index]
            if any(
                state.finishable[position][fst_state]
                for position, fst_state in snapshots
            ):
                support += state.weight
        return support

    def _should_output(self, prefix: tuple[int, ...]) -> bool:
        if self.pivot is None:
            return True
        return self.pivot in prefix
