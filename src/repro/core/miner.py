"""Top-level mining entry point.

:func:`mine` is the one-call API most applications need: it picks an algorithm
by name, runs it on a simulated cluster, and returns a
:class:`~repro.core.results.MiningResult`.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.dcand import DCandMiner
from repro.core.dseq import DSeqMiner
from repro.core.naive import NaiveMiner, SemiNaiveMiner
from repro.core.results import MiningResult
from repro.dictionary import Dictionary
from repro.errors import MiningError
from repro.patex import PatEx
from repro.sequences import SequenceDatabase

#: Algorithm name -> miner class.
ALGORITHMS = {
    "dseq": DSeqMiner,
    "d-seq": DSeqMiner,
    "dcand": DCandMiner,
    "d-cand": DCandMiner,
    "naive": NaiveMiner,
    "semi-naive": SemiNaiveMiner,
    "seminaive": SemiNaiveMiner,
}


def mine(
    database: SequenceDatabase | Sequence[Sequence[int]],
    dictionary: Dictionary,
    patex: PatEx | str,
    sigma: int,
    algorithm: str = "dseq",
    **options,
) -> MiningResult:
    """Mine frequent patterns under a flexible subsequence constraint.

    Parameters
    ----------
    database:
        fid-encoded input sequences.
    dictionary:
        Frequency-ordered item dictionary (the f-list).
    patex:
        The subsequence constraint as a pattern expression (string or
        :class:`~repro.patex.PatEx`).
    sigma:
        Minimum support threshold (>= 1).
    algorithm:
        One of ``"dseq"``, ``"dcand"``, ``"naive"``, ``"semi-naive"``.
    options:
        Forwarded to the chosen miner (e.g. ``num_workers``, ``use_rewriting``,
        ``kernel`` — one of ``"compiled"``, ``"interpreted"`` — to pick the
        FST mining kernel, ``grid`` / ``partitioner`` / ``map_batching`` to
        pick the grid engine, reduce partitioner, and batch-map mode,
        ``max_runs`` to tune the accepting-run safety cap, or ``cluster`` —
        a :class:`~repro.mapreduce.ClusterConfig` that specifies the whole
        execution substrate — backend, codec, spill budget, and the knobs
        above — in one object).

    Returns
    -------
    MiningResult
        Mapping from pattern (tuple of fids) to frequency, plus job metrics.
    """
    key = algorithm.strip().lower()
    miner_class = ALGORITHMS.get(key)
    if miner_class is None:
        raise MiningError(
            f"unknown algorithm {algorithm!r}; choose one of {sorted(set(ALGORITHMS))}"
        )
    miner = miner_class(patex, sigma, dictionary, **options)
    return miner.mine(database)
