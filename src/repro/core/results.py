"""Mining results: frequent patterns with frequencies plus job metrics."""

from __future__ import annotations

from collections.abc import Iterator, Mapping

from repro.dictionary import Dictionary
from repro.mapreduce.metrics import JobMetrics


class MiningResult(Mapping):
    """The output of one mining run.

    Behaves like a read-only mapping from pattern (tuple of fids) to frequency,
    and additionally carries the :class:`JobMetrics` of the run (if any).
    """

    def __init__(
        self,
        patterns: Mapping[tuple[int, ...], int],
        metrics: JobMetrics | None = None,
        algorithm: str = "",
    ) -> None:
        self._patterns = dict(patterns)
        self.metrics = metrics if metrics is not None else JobMetrics()
        self.algorithm = algorithm

    # ------------------------------------------------------------- mapping API
    def __getitem__(self, pattern: tuple[int, ...]) -> int:
        return self._patterns[tuple(pattern)]

    def __iter__(self) -> Iterator[tuple[int, ...]]:
        return iter(self._patterns)

    def __len__(self) -> int:
        return len(self._patterns)

    # ------------------------------------------------------------ conveniences
    def patterns(self) -> dict[tuple[int, ...], int]:
        """A copy of the pattern -> frequency mapping."""
        return dict(self._patterns)

    def sorted_patterns(self) -> list[tuple[tuple[int, ...], int]]:
        """Patterns sorted by decreasing frequency, then lexicographically."""
        return sorted(self._patterns.items(), key=lambda kv: (-kv[1], kv[0]))

    def decoded(self, dictionary: Dictionary) -> dict[tuple[str, ...], int]:
        """Patterns rendered as gid tuples (for display and examples)."""
        return {
            dictionary.decode(pattern): frequency
            for pattern, frequency in self._patterns.items()
        }

    def top(self, k: int, dictionary: Dictionary | None = None) -> list[tuple]:
        """The ``k`` most frequent patterns, optionally decoded."""
        ranked = self.sorted_patterns()[:k]
        if dictionary is None:
            return ranked
        return [(dictionary.decode(pattern), frequency) for pattern, frequency in ranked]

    def same_patterns_as(self, other: "MiningResult | Mapping") -> bool:
        """True if both results contain exactly the same patterns and counts."""
        other_patterns = dict(other)
        return self._patterns == other_patterns

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MiningResult(algorithm={self.algorithm!r}, patterns={len(self._patterns)})"
        )
