"""Local mining on weighted output NFAs (Sec. VI-B).

In D-CAND the expensive FST simulation happens in the map phase; the reduce
phase only has to count, for every candidate subsequence, the total weight of
the NFAs that accept it.  The counting uses pattern growth directly on the
compressed NFAs: a prefix is associated with, per NFA, the set of states
reachable by reading the prefix.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import MiningError
from repro.nfa import OutputNfa


class NfaLocalMiner:
    """Counts frequent candidate subsequences encoded in weighted NFAs.

    Parameters
    ----------
    sigma:
        Minimum support.
    pivot:
        When given, only patterns whose maximum item equals ``pivot`` are
        emitted.  (Per-pivot NFAs may encode candidates with a smaller pivot
        because items larger than the pivot were dropped from run output sets;
        those candidates are counted by their own partition instead.)
    """

    def __init__(
        self, sigma: int, pivot: int | None = None, max_patterns: int = 10_000_000
    ) -> None:
        if sigma < 1:
            raise MiningError(f"sigma must be >= 1, got {sigma}")
        self.sigma = sigma
        self.pivot = pivot
        self.max_patterns = max_patterns

    def mine(
        self,
        nfas: Sequence[OutputNfa],
        weights: Sequence[int] | None = None,
    ) -> dict[tuple[int, ...], int]:
        """Count the frequent candidate subsequences of the weighted NFAs."""
        if weights is None:
            weights = [1] * len(nfas)
        if len(weights) != len(nfas):
            raise MiningError("weights must align with NFAs")
        patterns: dict[tuple[int, ...], int] = {}
        projected = [
            (index, frozenset({0})) for index in range(len(nfas)) if weights[index] > 0
        ]
        self._expand((), projected, nfas, weights, patterns)
        return patterns

    # ----------------------------------------------------------------- search
    def _expand(
        self,
        prefix: tuple[int, ...],
        projected: list[tuple[int, frozenset[int]]],
        nfas: Sequence[OutputNfa],
        weights: Sequence[int],
        patterns: dict[tuple[int, ...], int],
    ) -> None:
        children: dict[int, dict[int, set[int]]] = {}
        for nfa_index, states in projected:
            outgoing = nfas[nfa_index].outgoing
            for state in states:
                for label, target in outgoing(state):
                    for item in label:
                        children.setdefault(item, {}).setdefault(nfa_index, set()).add(
                            target
                        )

        for item in sorted(children):
            child = children[item]
            prefix_support = sum(weights[nfa_index] for nfa_index in child)
            if prefix_support < self.sigma:
                continue
            child_prefix = prefix + (item,)
            child_projected = [
                (nfa_index, frozenset(states)) for nfa_index, states in child.items()
            ]
            support = sum(
                weights[nfa_index]
                for nfa_index, states in child_projected
                if any(nfas[nfa_index].is_final(state) for state in states)
            )
            if support >= self.sigma and self._should_output(child_prefix):
                if len(patterns) >= self.max_patterns:
                    raise MiningError(
                        f"more than {self.max_patterns} patterns produced; "
                        "lower sigma or tighten the constraint"
                    )
                patterns[child_prefix] = support
            self._expand(child_prefix, child_projected, nfas, weights, patterns)

    def _should_output(self, prefix: tuple[int, ...]) -> bool:
        if self.pivot is None:
            return True
        return max(prefix) == self.pivot
