"""Input sequence rewriting for sequence representation (Sec. V-B).

Before an input sequence is sent to the partition of a pivot item, leading and
trailing positions that are irrelevant for that pivot are dropped.  Relevance
is decided on the position–state grid: a position is relevant when a live edge
at that position changes the FST state or can produce an output item that may
participate in a pivot sequence for the pivot.  The check is deliberately
conservative (over-approximating relevance only reduces trimming).
"""

from __future__ import annotations

from repro.core.pivot_search import PositionStateGrid


def rewrite_for_pivot(grid: PositionStateGrid, pivot: int) -> tuple[int, ...]:
    """The representation ρ_pivot(T): ``T`` with irrelevant borders removed.

    Returns the contiguous slice of the grid's sequence between the first and
    the last relevant position for ``pivot``; the slice always contains every
    position that can contribute to a pivot sequence for ``pivot``.
    """
    sequence = grid.sequence
    if not sequence:
        return sequence
    first, last = grid.relevant_range(pivot)
    if first <= 1 and last >= len(sequence):
        return sequence
    return sequence[first - 1 : last]


def rewrite_statistics(
    grid: PositionStateGrid, pivots: set[int]
) -> dict[int, tuple[int, int]]:
    """For each pivot, the (original length, rewritten length) pair.

    Used by the experiment harness to report how much communication the
    rewriting step saves.
    """
    original = len(grid.sequence)
    return {
        pivot: (original, len(rewrite_for_pivot(grid, pivot))) for pivot in pivots
    }
