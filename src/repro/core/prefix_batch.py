"""Prefix-sharing batch map: trie-batched grid construction over a chunk.

PR 5's corpus dedup (``unique_view()``) collapses *identical* encoded
sequences; this module amortizes across *distinct* sequences that share
prefixes — the dominant redundancy of n-gram and text corpora.  A per-chunk
trie is built over the unique encoded sequences, and the compiled kernel is
driven once per trie **node** through :class:`~repro.core.grid_engine.
GrowableFlatGrid`: the forward dynamic program for a shared prefix runs once,
sibling branches restore to the branch point with ``mark()``/``rewind()``
instead of recomputing, and every sequence's grid is frozen out of the shared
state with ``snapshot()``.

Two batch drivers are exposed:

* :func:`batched_grids` — D-SEQ and the pivot-aware local miner: one
  :class:`~repro.core.grid_engine.FlatPivotGrid` per unique sequence,
  byte-identical to the per-sequence build (the differential matrix holds
  ``map_batching={"off","trie"}`` equal in patterns *and* shuffle metrics).
* :func:`batched_accepting` — D-CAND: a reachable-state-set walk over the
  same trie decides which sequences have an accepting run at all, so the
  (much more expensive) run enumeration is skipped for rejected sequences.

Both meter their work into the ``counters`` mapping (``batch_trie_nodes``,
``batch_shared_positions``) that flows through ``MapTaskResult`` →
``JobMetrics`` → ``RunRecord`` → ``--metrics``.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.core.grid_engine import FlatPivotGrid, GrowableFlatGrid
from repro.dictionary import Dictionary
from repro.errors import MiningError
from repro.fst import Fst, MiningKernel, ensure_kernel

#: Batch-map modes accepted by miners, ``ClusterConfig``, and ``--map-batching``.
MAP_BATCHINGS = ("off", "trie")

#: Batch-map mode used when none is requested explicitly.  ``off`` keeps the
#: per-sequence path: on corpora with little prefix overlap the per-sequence
#: accepting-run short-circuit (skip the whole build for rejected sequences)
#: beats sharing, so batching stays opt-in per workload.
DEFAULT_MAP_BATCHING = "off"


def normalize_map_batching(map_batching: str | None) -> str:
    """Map a user-provided batch-map mode to a canonical one (None → default)."""
    if map_batching is None:
        return DEFAULT_MAP_BATCHING
    name = str(map_batching).strip().lower()
    if name not in MAP_BATCHINGS:
        raise MiningError(
            f"unknown map batching {map_batching!r}; "
            f"choose one of {', '.join(MAP_BATCHINGS)}"
        )
    return name


class _TrieNode:
    """One trie node: children keyed by the next encoded item."""

    __slots__ = ("children", "terminal")

    def __init__(self) -> None:
        self.children: dict[int, _TrieNode] = {}
        self.terminal: tuple[int, ...] | None = None


def _build_trie(sequences: Iterable[Sequence[int]]) -> tuple[_TrieNode, int]:
    """Trie over the unique sequences; returns (root, total unique positions)."""
    root = _TrieNode()
    seen: set[tuple[int, ...]] = set()
    total_positions = 0
    for sequence in sequences:
        key = tuple(sequence)
        if key in seen:
            continue
        seen.add(key)
        total_positions += len(key)
        node = root
        for item in key:
            child = node.children.get(item)
            if child is None:
                child = _TrieNode()
                node.children[item] = child
            node = child
        node.terminal = key
    return root, total_positions


def _count(counters: dict | None, nodes: int, total_positions: int) -> None:
    if counters is None:
        return
    counters["batch_trie_nodes"] = counters.get("batch_trie_nodes", 0) + nodes
    counters["batch_shared_positions"] = (
        counters.get("batch_shared_positions", 0) + (total_positions - nodes)
    )


#: Stack sentinel marking "rewind the shared grid to this mark" (DFS unwind).
_REWIND = object()


def _mark_live(kernel, root: _TrieNode) -> tuple[dict[int, bool], dict[int, bool]]:
    """Reachable-state pre-pass: terminal acceptance plus subtree liveness.

    Returns ``(accepting, live)`` keyed by node id: ``accepting`` is whether
    the node's terminal (if any) has an accepting run; ``live`` is whether the
    subtree rooted at the node contains *any* accepting terminal.  Dead
    subtrees never need the forward dynamic program — their grids are the
    cheap non-accepting builds — so the batched walk skips them entirely,
    keeping the per-sequence path's accepting-run short-circuit.
    """
    matching = kernel.matching
    target_of = kernel.target
    final_states = kernel.final_states
    accepting: dict[int, bool] = {}
    live: dict[int, bool] = {}
    order: list[_TrieNode] = []
    # (state set, item) -> reached state set: the same few state sets recur
    # throughout the trie, so each distinct transition sweep runs once.
    step: dict[tuple[frozenset[int], int], frozenset[int]] = {}
    stack: list[tuple[_TrieNode, frozenset[int]]] = [
        (root, frozenset((kernel.initial_state,)))
    ]
    while stack:
        node, states = stack.pop()
        order.append(node)
        accepting[id(node)] = node.terminal is not None and bool(
            states & final_states
        )
        for item, child in node.children.items():
            key = (states, item)
            reached = step.get(key)
            if reached is None:
                reached = frozenset(
                    target_of(tid) for state in states for tid in matching(state, item)
                )
                step[key] = reached
            stack.append((child, reached))
    # DFS pop order lists every descendant after its parent, so one reverse
    # sweep folds child liveness upward.
    for node in reversed(order):
        live[id(node)] = accepting[id(node)] or any(
            live[id(child)] for child in node.children.values()
        )
    return accepting, live


def _subtree_terminals(node: _TrieNode) -> Iterable[tuple[int, ...]]:
    """Every terminal at or below ``node`` (iterative, arbitrary depth)."""
    stack = [node]
    while stack:
        current = stack.pop()
        if current.terminal is not None:
            yield current.terminal
        stack.extend(current.children.values())


def batched_grids(
    fst: Fst | MiningKernel,
    sequences: Iterable[Sequence[int]],
    dictionary: Dictionary | None = None,
    max_frequent_fid: int | None = None,
    counters: dict | None = None,
) -> dict[tuple[int, ...], FlatPivotGrid]:
    """One flat grid per unique sequence, built trie-batched.

    The returned mapping is keyed by the encoded sequence tuple; duplicate
    input sequences share one grid.  Each grid is byte-identical to
    ``FlatPivotGrid(kernel, sequence, max_frequent_fid=...)`` — the trie only
    changes *when* the forward columns for a shared prefix are computed, never
    what they contain.

    The walk prunes on acceptance: a reachable-state pre-pass (the same sweep
    :func:`batched_accepting` runs) marks the subtrees that contain accepting
    terminals, and only those drive the kernel — sequences without an
    accepting run take the per-sequence constructor's short-circuit instead,
    exactly like the unbatched path.  ``batch_trie_nodes`` therefore counts
    the positions actually driven through the kernel, and
    ``batch_shared_positions`` the accepting-sequence positions served from a
    shared prefix instead of recomputed.
    """
    kernel = ensure_kernel(fst, dictionary)
    root, _ = _build_trie(sequences)
    accepting, live = _mark_live(kernel, root)
    shared = GrowableFlatGrid(kernel, max_frequent_fid=max_frequent_fid)
    grids: dict[tuple[int, ...], FlatPivotGrid] = {}

    def direct(terminal: tuple[int, ...]) -> FlatPivotGrid:
        # Non-accepting: FlatPivotGrid's constructor already short-circuits
        # the forward DP for these, so the direct build is the cheap path.
        return FlatPivotGrid(kernel, terminal, max_frequent_fid=max_frequent_fid)

    if root.terminal is not None:
        grids[root.terminal] = (
            shared.snapshot() if accepting[id(root)] else direct(root.terminal)
        )
    nodes = 0
    built_positions = 0
    stack: list = [(item, child) for item, child in reversed(root.children.items())]
    while stack:
        entry = stack.pop()
        if entry[0] is _REWIND:
            shared.rewind(entry[1])
            continue
        item, node = entry
        if not live[id(node)]:
            for terminal in _subtree_terminals(node):
                grids[terminal] = direct(terminal)
            continue
        mark = shared.mark()
        shared.extend(item)
        nodes += 1
        if node.terminal is not None:
            if accepting[id(node)]:
                built_positions += len(node.terminal)
                grids[node.terminal] = shared.snapshot()
            else:
                grids[node.terminal] = direct(node.terminal)
        stack.append((_REWIND, mark))
        stack.extend(
            (child_item, child) for child_item, child in reversed(node.children.items())
        )
    _count(counters, nodes, built_positions)
    return grids


def batched_accepting(
    fst: Fst | MiningKernel,
    sequences: Iterable[Sequence[int]],
    dictionary: Dictionary | None = None,
    counters: dict | None = None,
) -> dict[tuple[int, ...], bool]:
    """Whether each unique sequence has an accepting run, via one trie walk.

    Simulates the set of reachable FST states down the trie (one transition
    sweep per trie node instead of per sequence position); a sequence is
    accepting iff the state set at its leaf intersects the final states.
    This is exact — D-CAND's map emits nothing for a sequence without
    accepting runs, so skipping those sequences is emission-identical.
    """
    kernel = ensure_kernel(fst, dictionary)
    root, total_positions = _build_trie(sequences)
    matching = kernel.matching
    target_of = kernel.target
    final_states = kernel.final_states
    accepting: dict[tuple[int, ...], bool] = {}
    initial = frozenset((kernel.initial_state,))
    if root.terminal is not None:
        accepting[root.terminal] = kernel.is_final(kernel.initial_state)
    nodes = 0
    step: dict[tuple[frozenset[int], int], frozenset[int]] = {}
    stack: list[tuple[_TrieNode, frozenset[int]]] = [(root, initial)]
    while stack:
        node, states = stack.pop()
        for item, child in node.children.items():
            nodes += 1
            key = (states, item)
            reached = step.get(key)
            if reached is None:
                reached = frozenset(
                    target_of(tid) for state in states for tid in matching(state, item)
                )
                step[key] = reached
            if child.terminal is not None:
                accepting[child.terminal] = bool(reached & final_states)
            stack.append((child, reached))
    _count(counters, nodes, total_positions)
    return accepting
