"""NAÏVE and SEMI-NAÏVE baselines: subsequence-based partitioning (Sec. III-A).

Both baselines generate all candidate subsequences in the map phase and count
them in the reduce phase (the distributed analogue of word count).  SEMI-NAÏVE
additionally exploits the restricted support antimonotonicity of subsequence
predicates (``f(w, D) >= f_π(S, D)`` for every ``w ∈ S``) and only emits
candidates consisting entirely of frequent items.

For loose constraints the number of candidates explodes; the paper reports
those runs as out-of-memory failures.  The reproduction surfaces the same
outcome as :class:`~repro.errors.CandidateExplosionError`.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.core.results import MiningResult
from repro.dictionary import Dictionary
from repro.fst import (
    DEFAULT_MAX_CANDIDATES,
    DEFAULT_MAX_RUNS,
    Fst,
    MiningKernel,
    ensure_kernel,
    generate_candidates,
    make_kernel,
)
from repro.mapreduce import (
    Cluster,
    ClusterConfig,
    MapReduceJob,
    resolve_cluster,
)
from repro.patex import PatEx
from repro.sequences import SequenceDatabase, as_mining_records, record_parts


class NaiveJob(MapReduceJob):
    """Word-count style job over candidate subsequences."""

    use_combiner = True

    def __init__(
        self,
        fst: Fst | MiningKernel,
        dictionary: Dictionary | None = None,
        sigma: int = 1,
        prune_infrequent_items: bool = False,
        max_candidates_per_sequence: int = DEFAULT_MAX_CANDIDATES,
        max_runs: int = DEFAULT_MAX_RUNS,
    ) -> None:
        kernel = ensure_kernel(fst, dictionary)
        self.kernel = kernel
        self.fst = kernel.fst
        self.dictionary = kernel.dictionary
        self.sigma = sigma
        self.prune_infrequent_items = prune_infrequent_items
        self.max_candidates_per_sequence = max_candidates_per_sequence
        self.max_runs = max_runs

    def map(self, record) -> Iterable[tuple[tuple[int, ...], int]]:
        # With corpus-level dedup, one candidate enumeration serves every
        # duplicate of the sequence: the record's multiplicity becomes the
        # emitted count (plain records carry an implicit weight of 1).
        sequence, weight = record_parts(record)
        candidates = generate_candidates(
            self.kernel,
            sequence,
            sigma=self.sigma if self.prune_infrequent_items else None,
            max_runs=self.max_runs,
            max_candidates=self.max_candidates_per_sequence,
        )
        for candidate in candidates:
            yield candidate, weight

    def combine(
        self, key: tuple[int, ...], values: list[int]
    ) -> Iterable[tuple[tuple[int, ...], int]]:
        yield key, sum(values)

    def reduce(
        self, key: tuple[int, ...], values: list[int]
    ) -> Iterable[tuple[tuple[int, ...], int]]:
        frequency = sum(values)
        if frequency >= self.sigma:
            yield key, frequency

    def record_size(self, key: tuple[int, ...], value: int) -> int:
        return 8 + 4 * len(key)


class _SubsequenceBaselineMiner:
    """Shared implementation of the NAÏVE and SEMI-NAÏVE miners."""

    algorithm_name = "baseline"
    prune_infrequent_items = False

    def __init__(
        self,
        patex: PatEx | str,
        sigma: int,
        dictionary: Dictionary,
        num_workers: int = 4,
        max_candidates_per_sequence: int = DEFAULT_MAX_CANDIDATES,
        max_runs: int = DEFAULT_MAX_RUNS,
        kernel: str | None = None,
        grid: str | None = None,
        partitioner: str | None = None,
        map_batching: str | None = None,
        dedup: bool = True,
        cluster: ClusterConfig | str | Cluster | None = None,
    ) -> None:
        self.patex = PatEx(patex) if isinstance(patex, str) else patex
        self.sigma = sigma
        self.dictionary = dictionary
        self.max_candidates_per_sequence = max_candidates_per_sequence
        self.max_runs = max_runs
        self.dedup = dedup
        self.cluster = ClusterConfig.resolve(
            cluster,
            num_workers=num_workers,
            kernel=kernel,
            grid=grid,
            partitioner=partitioner,
            map_batching=map_batching,
        )

    def mine(self, database: SequenceDatabase | Sequence[Sequence[int]]) -> MiningResult:
        """Mine all frequent patterns; may raise ``CandidateExplosionError``."""
        fst = self.patex.compile(self.dictionary)
        kernel = make_kernel(fst, self.dictionary, self.cluster.kernel_name)
        job = NaiveJob(
            kernel,
            sigma=self.sigma,
            prune_infrequent_items=self.prune_infrequent_items,
            max_candidates_per_sequence=self.max_candidates_per_sequence,
            max_runs=self.max_runs,
        )
        records = as_mining_records(database, dedup=self.dedup)
        cluster = resolve_cluster(self.cluster)
        # Deferred import: repro.core.balance sits atop the core jobs.
        from repro.core.balance import attach_partition_plan

        attach_partition_plan(self, job, records, cluster)
        result = cluster.run(job, records)
        return MiningResult(dict(result.outputs), result.metrics, self.algorithm_name)


class NaiveMiner(_SubsequenceBaselineMiner):
    """The NAÏVE baseline: emit and count every candidate subsequence."""

    algorithm_name = "NAIVE"
    prune_infrequent_items = False


class SemiNaiveMiner(_SubsequenceBaselineMiner):
    """The SEMI-NAÏVE baseline: emit only candidates made of frequent items."""

    algorithm_name = "SEMI-NAIVE"
    prune_infrequent_items = True
