"""NAÏVE and SEMI-NAÏVE baselines: subsequence-based partitioning (Sec. III-A).

Both baselines generate all candidate subsequences in the map phase and count
them in the reduce phase (the distributed analogue of word count).  SEMI-NAÏVE
additionally exploits the restricted support antimonotonicity of subsequence
predicates (``f(w, D) >= f_π(S, D)`` for every ``w ∈ S``) and only emits
candidates consisting entirely of frequent items.

For loose constraints the number of candidates explodes; the paper reports
those runs as out-of-memory failures.  The reproduction surfaces the same
outcome as :class:`~repro.errors.CandidateExplosionError`.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.core.results import MiningResult
from repro.dictionary import Dictionary
from repro.fst import Fst, generate_candidates
from repro.mapreduce import Cluster, MapReduceJob, resolve_cluster
from repro.patex import PatEx
from repro.sequences import SequenceDatabase, as_records


class NaiveJob(MapReduceJob):
    """Word-count style job over candidate subsequences."""

    use_combiner = True

    def __init__(
        self,
        fst: Fst,
        dictionary: Dictionary,
        sigma: int,
        prune_infrequent_items: bool,
        max_candidates_per_sequence: int = 1_000_000,
        max_runs: int = 100_000,
    ) -> None:
        self.fst = fst
        self.dictionary = dictionary
        self.sigma = sigma
        self.prune_infrequent_items = prune_infrequent_items
        self.max_candidates_per_sequence = max_candidates_per_sequence
        self.max_runs = max_runs

    def map(self, record: Sequence[int]) -> Iterable[tuple[tuple[int, ...], int]]:
        candidates = generate_candidates(
            self.fst,
            tuple(record),
            self.dictionary,
            sigma=self.sigma if self.prune_infrequent_items else None,
            max_runs=self.max_runs,
            max_candidates=self.max_candidates_per_sequence,
        )
        for candidate in candidates:
            yield candidate, 1

    def combine(
        self, key: tuple[int, ...], values: list[int]
    ) -> Iterable[tuple[tuple[int, ...], int]]:
        yield key, sum(values)

    def reduce(
        self, key: tuple[int, ...], values: list[int]
    ) -> Iterable[tuple[tuple[int, ...], int]]:
        frequency = sum(values)
        if frequency >= self.sigma:
            yield key, frequency

    def record_size(self, key: tuple[int, ...], value: int) -> int:
        return 8 + 4 * len(key)


class _SubsequenceBaselineMiner:
    """Shared implementation of the NAÏVE and SEMI-NAÏVE miners."""

    algorithm_name = "baseline"
    prune_infrequent_items = False

    def __init__(
        self,
        patex: PatEx | str,
        sigma: int,
        dictionary: Dictionary,
        num_workers: int = 4,
        max_candidates_per_sequence: int = 1_000_000,
        max_runs: int = 100_000,
        backend: str | Cluster = "simulated",
        codec: str = "compact",
        spill_budget_bytes: int | None = None,
    ) -> None:
        self.patex = PatEx(patex) if isinstance(patex, str) else patex
        self.sigma = sigma
        self.dictionary = dictionary
        self.num_workers = num_workers
        self.max_candidates_per_sequence = max_candidates_per_sequence
        self.max_runs = max_runs
        self.backend = backend
        self.codec = codec
        self.spill_budget_bytes = spill_budget_bytes

    def mine(self, database: SequenceDatabase | Sequence[Sequence[int]]) -> MiningResult:
        """Mine all frequent patterns; may raise ``CandidateExplosionError``."""
        fst = self.patex.compile(self.dictionary)
        job = NaiveJob(
            fst,
            self.dictionary,
            self.sigma,
            prune_infrequent_items=self.prune_infrequent_items,
            max_candidates_per_sequence=self.max_candidates_per_sequence,
            max_runs=self.max_runs,
        )
        cluster = resolve_cluster(
            self.backend,
            num_workers=self.num_workers,
            codec=self.codec,
            spill_budget_bytes=self.spill_budget_bytes,
        )
        result = cluster.run(job, as_records(database))
        return MiningResult(dict(result.outputs), result.metrics, self.algorithm_name)


class NaiveMiner(_SubsequenceBaselineMiner):
    """The NAÏVE baseline: emit and count every candidate subsequence."""

    algorithm_name = "NAIVE"
    prune_infrequent_items = False


class SemiNaiveMiner(_SubsequenceBaselineMiner):
    """The SEMI-NAÏVE baseline: emit only candidates made of frequent items."""

    algorithm_name = "SEMI-NAIVE"
    prune_infrequent_items = True
