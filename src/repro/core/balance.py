"""Partition balance: measurement and skew-aware planning (Sec. III-B).

The paper argues (following Beedkar and Gemulla) that ordering items by
decreasing document frequency leads to well-balanced partition sizes: frequent
items occur in many input sequences, but their partitions are responsible for
few distinct subsequences, and the rewritten representations sent to them are
small.  This module measures that claim for any of the item-based algorithms:
it runs only the map (and optionally the combine) phase of a job, groups the
emitted records by partition key, and computes balance statistics over the
per-partition shuffle sizes.

Measurement alone leaves the reducers assigned by ``stable_hash(pivot)``,
which can still straggle the reduce stage when several heavy pivots collide in
one bucket.  :func:`plan_job_partitions` therefore promotes the measurement to
an *online planner*: it estimates the per-pivot shuffle load from the same
(optionally sampled) map pass, greedily bin-packs pivots onto reduce buckets
largest-first (LPT), and returns a :class:`PartitionPlan` the miners attach to
their job — :meth:`~repro.mapreduce.job.MapReduceJob.partition` then consults
the plan table and falls back to the stable hash for unplanned keys, so
patterns stay byte-identical across both partitioners.

The measurement half is used by the ``examples/partition_balance.py`` study
and the ``bench_partition_balance`` ablation benchmark; the planner runs
whenever a miner is configured with ``partitioner="planned"``.
"""

from __future__ import annotations

import heapq
import itertools
import math
from collections import defaultdict
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from repro.core.dcand import DCandJob
from repro.core.dseq import DSeqJob
from repro.dictionary import Dictionary
from repro.errors import MiningError
from repro.mapreduce import MapReduceJob
from repro.mapreduce.metrics import lpt_worker_loads
from repro.patex import PatEx
from repro.sequences import SequenceDatabase, as_mining_records


@dataclass
class PartitionBalance:
    """Per-partition shuffle statistics of one map phase.

    ``bytes_by_partition`` and ``records_by_partition`` map partition keys
    (pivot items for item-based partitioning) to the number of shuffled bytes
    and records destined for that partition.
    """

    bytes_by_partition: dict = field(default_factory=dict)
    records_by_partition: dict = field(default_factory=dict)

    # ----------------------------------------------------------------- totals
    @property
    def num_partitions(self) -> int:
        """Number of non-empty partitions."""
        return len(self.bytes_by_partition)

    @property
    def total_bytes(self) -> int:
        return sum(self.bytes_by_partition.values())

    @property
    def total_records(self) -> int:
        return sum(self.records_by_partition.values())

    @property
    def max_bytes(self) -> int:
        return max(self.bytes_by_partition.values(), default=0)

    @property
    def mean_bytes(self) -> float:
        if not self.bytes_by_partition:
            return 0.0
        return self.total_bytes / self.num_partitions

    # ---------------------------------------------------------------- balance
    @property
    def imbalance(self) -> float:
        """Ratio of the largest partition to the mean partition (>= 1).

        A perfectly balanced partitioning has imbalance 1; the higher the
        value, the longer the straggler partition delays the reduce stage.
        """
        mean = self.mean_bytes
        if mean == 0:
            return 1.0
        return self.max_bytes / mean

    def gini(self) -> float:
        """Gini coefficient of the per-partition byte sizes (0 = balanced)."""
        sizes = sorted(self.bytes_by_partition.values())
        if not sizes:
            return 0.0
        total = sum(sizes)
        if total == 0:
            return 0.0
        cumulative = 0.0
        weighted = 0.0
        for size in sizes:
            cumulative += size
            weighted += cumulative
        count = len(sizes)
        # Standard formula: G = (n + 1 - 2 * sum(cumulative_i) / total) / n
        return max(0.0, (count + 1 - 2 * weighted / total) / count)

    def largest_worker_share(self, num_workers: int) -> float:
        """Fraction of all shuffled bytes landing on the most loaded worker.

        Partitions are assigned to workers greedily by decreasing size (the
        usual longest-processing-time heuristic), mirroring how the simulated
        cluster spreads reduce buckets.  The assignment runs on a heap
        (:func:`~repro.mapreduce.metrics.lpt_worker_loads`), so planner-time
        calls stay cheap at realistic pivot counts.
        """
        if num_workers < 1:
            raise MiningError(f"num_workers must be >= 1, got {num_workers}")
        total = self.total_bytes
        if total == 0:
            return 0.0
        loads = lpt_worker_loads(self.bytes_by_partition.values(), num_workers)
        return max(loads) / total

    # ------------------------------------------------------------------ views
    def top(self, k: int, dictionary: Dictionary | None = None) -> list[tuple]:
        """The ``k`` largest partitions as ``(key, bytes, records)`` tuples.

        If a dictionary is given and keys are item fids, keys are decoded to
        gids for readability.
        """
        ranked = sorted(
            self.bytes_by_partition.items(), key=lambda kv: (-kv[1], str(kv[0]))
        )[:k]
        rows = []
        for key, size in ranked:
            label = key
            if dictionary is not None and isinstance(key, int) and key in dictionary:
                label = dictionary.gid_of(key)
            rows.append((label, size, self.records_by_partition.get(key, 0)))
        return rows

    def histogram(self, num_bins: int = 10) -> list[tuple[int, int, int]]:
        """Histogram of partition sizes: ``(lower_bound, upper_bound, count)``.

        Bins are logarithmic in partition size (powers of two), which matches
        how skewed the sizes typically are.  When the sizes span more than
        ``num_bins`` octaves, the *smallest* bins are dropped: the histogram
        exists to show the straggler partitions, so the largest bins must
        always survive truncation.  ``num_bins=0`` returns every bin.
        """
        sizes = list(self.bytes_by_partition.values())
        if not sizes:
            return []
        bins: dict[int, int] = defaultdict(int)
        for size in sizes:
            exponent = 0 if size <= 1 else int(math.log2(size))
            bins[exponent] += 1
        rows = []
        for exponent in sorted(bins):
            rows.append((2**exponent, 2 ** (exponent + 1) - 1, bins[exponent]))
        return rows[-num_bins:] if num_bins else rows

    def as_dict(self) -> dict[str, float]:
        """Flat summary used by reports and benchmarks."""
        return {
            "partitions": self.num_partitions,
            "total_bytes": self.total_bytes,
            "total_records": self.total_records,
            "max_bytes": self.max_bytes,
            "mean_bytes": round(self.mean_bytes, 1),
            "imbalance": round(self.imbalance, 2),
            "gini": round(self.gini(), 3),
        }


# ------------------------------------------------------------------ measuring
def measure_partition_balance(
    job: MapReduceJob, records: Iterable[Sequence[int]], use_combiner: bool | None = None
) -> PartitionBalance:
    """Run only the map (and combine) phase of ``job`` and group by key.

    ``use_combiner`` overrides the job's own setting; the default is to follow
    the job (as the simulated cluster does).
    """
    apply_combiner = job.use_combiner if use_combiner is None else use_combiner
    per_key_values: dict = defaultdict(list)
    for record in records:
        for key, value in job.map(record):
            per_key_values[key].append(value)

    balance = PartitionBalance()
    for key, values in per_key_values.items():
        if apply_combiner:
            emitted = list(job.combine(key, values))
        else:
            emitted = [(key, value) for value in values]
        size = sum(job.record_size(emit_key, value) for emit_key, value in emitted)
        balance.bytes_by_partition[key] = size
        balance.records_by_partition[key] = len(emitted)
    return balance


def dseq_partition_balance(
    patex: PatEx | str,
    sigma: int,
    dictionary: Dictionary,
    database: SequenceDatabase | Sequence[Sequence[int]],
    dedup: bool = True,
    **options,
) -> PartitionBalance:
    """Partition balance of D-SEQ's map output for one constraint.

    The job maps the same records a live miner would: with ``dedup`` (the
    default since the corpus-level dedup landed) that is the weighted
    ``unique_view()`` of the database, so the measured per-pivot bytes agree
    with the cluster's ``shuffle_bytes`` accounting even on duplication-heavy
    corpora.
    """
    patex = PatEx(patex) if isinstance(patex, str) else patex
    job = DSeqJob(patex.compile(dictionary), dictionary, sigma, **options)
    return measure_partition_balance(job, as_mining_records(database, dedup=dedup))


def dcand_partition_balance(
    patex: PatEx | str,
    sigma: int,
    dictionary: Dictionary,
    database: SequenceDatabase | Sequence[Sequence[int]],
    dedup: bool = True,
    **options,
) -> PartitionBalance:
    """Partition balance of D-CAND's map output for one constraint.

    Maps the weighted ``unique_view()`` records by default, exactly like a
    live :class:`~repro.core.dcand.DCandMiner`; see
    :func:`dseq_partition_balance`.
    """
    patex = PatEx(patex) if isinstance(patex, str) else patex
    job = DCandJob(patex.compile(dictionary), dictionary, sigma, **options)
    return measure_partition_balance(job, as_mining_records(database, dedup=dedup))


# ------------------------------------------------------------------- planning
@dataclass(frozen=True)
class PartitionPlan:
    """A skew-aware pivot → reduce-bucket assignment shipped with a job.

    Built by :func:`plan_partitions` from estimated per-pivot shuffle loads:
    pivots are placed largest-first onto the least-loaded bucket (LPT), so no
    hash collision can stack several heavy pivots into one straggler bucket.
    :meth:`~repro.mapreduce.job.MapReduceJob.partition` consults
    :meth:`lookup` and falls back to ``stable_hash`` for keys the planner
    never saw (e.g. pivots that only appear outside a sampled estimation
    pass), so the plan changes *where* records land but never *what* is
    mined.  The plan pickles with the job to the workers; it holds one small
    table entry per distinct pivot.
    """

    num_reduce_tasks: int
    #: Pivot key -> reduce bucket index.
    table: dict = field(default_factory=dict)
    #: Estimated bytes per reduce bucket under :attr:`table`.
    loads: tuple = ()

    def lookup(self, key) -> int | None:
        """The planned bucket of ``key``, or None when unplanned."""
        return self.table.get(key)

    @property
    def num_planned_keys(self) -> int:
        return len(self.table)

    @property
    def estimated_total_bytes(self) -> int:
        return sum(self.loads)

    @property
    def estimated_max_bytes(self) -> int:
        return max(self.loads, default=0)

    @property
    def estimated_imbalance(self) -> float:
        """Heaviest planned bucket over the mean non-empty bucket (>= 1)."""
        non_empty = [load for load in self.loads if load]
        if not non_empty:
            return 1.0
        return max(non_empty) / (sum(non_empty) / len(non_empty))

    def as_dict(self) -> dict:
        """Flat summary used by reports and benchmarks."""
        return {
            "num_reduce_tasks": self.num_reduce_tasks,
            "planned_keys": self.num_planned_keys,
            "estimated_total_bytes": self.estimated_total_bytes,
            "estimated_max_bytes": self.estimated_max_bytes,
            "estimated_imbalance": round(self.estimated_imbalance, 3),
        }


def estimate_partition_loads(
    job: MapReduceJob, records: Sequence, sample: float | None = None
) -> dict:
    """Estimate per-pivot shuffle bytes by running ``job``'s map phase.

    ``records`` are the records the miner is about to hand to ``Cluster.run``
    — the weighted ``unique_view()`` under dedup — so the estimate matches
    the real shuffle exactly when every record is mapped.  ``sample`` takes a
    stride-sampled subset (a fraction in (0, 1]) instead, the ripple-style
    sampling pass: cheaper, still proportional to the true loads on any
    corpus where heavy pivots occur in many records.
    """
    if sample is not None:
        if not 0.0 < sample <= 1.0:
            raise MiningError(f"sample must be in (0, 1], got {sample}")
        stride = max(1, round(1.0 / sample))
        # islice, not records[::stride]: the estimation pass only iterates,
        # and store-backed record sequences reject strided slicing.
        records = itertools.islice(iter(records), 0, None, stride)
    balance = measure_partition_balance(job, records)
    return dict(balance.bytes_by_partition)


def plan_partitions(
    loads_by_key: dict, num_reduce_tasks: int, num_workers: int | None = None
) -> PartitionPlan:
    """Greedily bin-pack keys onto reduce buckets largest-first (LPT).

    Keys are sorted by decreasing estimated load (ties keep first-occurrence
    order, which is deterministic for map output) and each is placed on the
    currently least-loaded bucket — the same heap-based LPT the balance
    statistics model workers with.

    When ``num_workers`` is given (and smaller than ``num_reduce_tasks``),
    packing runs in two levels: each key goes to the least-loaded *worker
    group* of buckets first, then to that group's least-loaded bucket.  The
    reduce-stage straggler is a worker-granularity quantity — a worker
    drains several buckets — and single-level bucket LPT can equalize the
    buckets so well that the groups pack badly (equal-size items leave no
    small filler around one heavy bucket).  Two-level packing optimizes the
    worker loads directly and still spreads each group across its buckets.
    """
    if num_reduce_tasks < 1:
        raise MiningError(f"num_reduce_tasks must be >= 1, got {num_reduce_tasks}")
    if num_workers is not None and num_workers < 1:
        raise MiningError(f"num_workers must be >= 1, got {num_workers}")
    loads = [0] * num_reduce_tasks
    table: dict = {}
    ranked = sorted(loads_by_key.items(), key=lambda kv: -kv[1])
    if num_workers is None or num_workers >= num_reduce_tasks:
        heap = [(0, index) for index in range(num_reduce_tasks)]
        for key, size in ranked:
            load, index = heapq.heappop(heap)
            table[key] = index
            loads[index] = load + size
            heapq.heappush(heap, (loads[index], index))
    else:
        # Worker w owns buckets w, w + num_workers, w + 2*num_workers, ...
        worker_heap = [(0, worker) for worker in range(num_workers)]
        worker_loads = [0] * num_workers
        bucket_heaps = {
            worker: [
                (0, bucket)
                for bucket in range(worker, num_reduce_tasks, num_workers)
            ]
            for worker in range(num_workers)
        }
        for key, size in ranked:
            worker_load, worker = heapq.heappop(worker_heap)
            bucket_load, bucket = heapq.heappop(bucket_heaps[worker])
            table[key] = bucket
            loads[bucket] = bucket_load + size
            worker_loads[worker] = worker_load + size
            heapq.heappush(bucket_heaps[worker], (loads[bucket], bucket))
            heapq.heappush(worker_heap, (worker_loads[worker], worker))
    return PartitionPlan(
        num_reduce_tasks=num_reduce_tasks, table=table, loads=tuple(loads)
    )


def plan_job_partitions(
    job: MapReduceJob,
    records: Sequence,
    num_reduce_tasks: int,
    num_workers: int | None = None,
    sample: float | None = None,
) -> PartitionPlan:
    """Build the :class:`PartitionPlan` a miner attaches to ``job``.

    One call chains the two planner halves: estimate the per-pivot shuffle
    load over ``records`` (optionally stride-sampled), then LPT-pack the
    pivots onto ``num_reduce_tasks`` buckets — worker-aware when the miner
    passes its cluster's ``num_workers`` along.
    """
    loads = estimate_partition_loads(job, records, sample=sample)
    return plan_partitions(loads, num_reduce_tasks, num_workers=num_workers)


def _records_key(records) -> object:
    """A cache key identifying a record set: content hash when cheap, else id.

    Encoded stores (what every miner hands to ``Cluster.run``) carry a cached
    ``content_hash()``; arbitrary record sequences fall back to object
    identity, which can only under-share, never alias different corpora.
    """
    content_hash = getattr(records, "content_hash", None)
    if callable(content_hash):
        return content_hash()
    return id(records)


class JobPlanner:
    """Per-miner cache of :class:`PartitionPlan` objects.

    The load-estimation pass replays the job's map phase over the corpus —
    by far the most expensive part of planning — so re-estimating on every
    ``mine()`` call (and, for multi-job miners, every stage) is pure waste:
    the plan is a function of the job type, the records, and the bucket
    layout, all of which repeat.  The planner estimates once per distinct
    ``(job type, records, layout, sample)`` and replays the cached plan.
    Sharing a plan is always safe: a plan only decides *where* keys land,
    never what is mined, and unplanned keys fall back to the stable hash.
    """

    __slots__ = ("_plans",)

    def __init__(self) -> None:
        self._plans: dict = {}

    def plan_for(
        self,
        job: MapReduceJob,
        records: Sequence,
        num_reduce_tasks: int,
        num_workers: int | None = None,
        sample: float | None = None,
    ) -> PartitionPlan:
        """The cached plan for this job/records/layout, building on a miss."""
        key = (
            type(job).__name__,
            _records_key(records),
            num_reduce_tasks,
            num_workers,
            sample,
        )
        plan = self._plans.get(key)
        if plan is None:
            plan = plan_job_partitions(
                job,
                records,
                num_reduce_tasks,
                num_workers=num_workers,
                sample=sample,
            )
            self._plans[key] = plan
        return plan


def attach_partition_plan(miner, job: MapReduceJob, records: Sequence, cluster) -> None:
    """Attach the miner's (cached) skew-aware plan to ``job`` when planned.

    The one planning block shared by every cluster miner: a no-op unless the
    miner's config selects the ``"planned"`` partitioner; otherwise the plan
    comes from a :class:`JobPlanner` lazily stored on the miner, so repeated
    ``mine()`` calls over the same corpus estimate the per-pivot loads once.
    """
    config = miner.cluster
    if config.partitioner_name != "planned":
        return
    planner = getattr(miner, "_job_planner", None)
    if planner is None:
        planner = JobPlanner()
        miner._job_planner = planner
    job.partition_plan = planner.plan_for(
        job,
        records,
        cluster.num_reduce_tasks,
        num_workers=cluster.num_workers,
        sample=config.plan_sample,
    )
