"""Partition-balance analysis for item-based partitioning (Sec. III-B).

The paper argues (following Beedkar and Gemulla) that ordering items by
decreasing document frequency leads to well-balanced partition sizes: frequent
items occur in many input sequences, but their partitions are responsible for
few distinct subsequences, and the rewritten representations sent to them are
small.  This module measures that claim for any of the item-based algorithms:
it runs only the map (and optionally the combine) phase of a job, groups the
emitted records by partition key, and computes balance statistics over the
per-partition shuffle sizes.

The result is used by the ``examples/partition_balance.py`` study and the
``bench_partition_balance`` ablation benchmark.
"""

from __future__ import annotations

import math
from collections import defaultdict
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from repro.core.dcand import DCandJob
from repro.core.dseq import DSeqJob
from repro.dictionary import Dictionary
from repro.errors import MiningError
from repro.mapreduce import MapReduceJob
from repro.patex import PatEx
from repro.sequences import SequenceDatabase


@dataclass
class PartitionBalance:
    """Per-partition shuffle statistics of one map phase.

    ``bytes_by_partition`` and ``records_by_partition`` map partition keys
    (pivot items for item-based partitioning) to the number of shuffled bytes
    and records destined for that partition.
    """

    bytes_by_partition: dict = field(default_factory=dict)
    records_by_partition: dict = field(default_factory=dict)

    # ----------------------------------------------------------------- totals
    @property
    def num_partitions(self) -> int:
        """Number of non-empty partitions."""
        return len(self.bytes_by_partition)

    @property
    def total_bytes(self) -> int:
        return sum(self.bytes_by_partition.values())

    @property
    def total_records(self) -> int:
        return sum(self.records_by_partition.values())

    @property
    def max_bytes(self) -> int:
        return max(self.bytes_by_partition.values(), default=0)

    @property
    def mean_bytes(self) -> float:
        if not self.bytes_by_partition:
            return 0.0
        return self.total_bytes / self.num_partitions

    # ---------------------------------------------------------------- balance
    @property
    def imbalance(self) -> float:
        """Ratio of the largest partition to the mean partition (>= 1).

        A perfectly balanced partitioning has imbalance 1; the higher the
        value, the longer the straggler partition delays the reduce stage.
        """
        mean = self.mean_bytes
        if mean == 0:
            return 1.0
        return self.max_bytes / mean

    def gini(self) -> float:
        """Gini coefficient of the per-partition byte sizes (0 = balanced)."""
        sizes = sorted(self.bytes_by_partition.values())
        if not sizes:
            return 0.0
        total = sum(sizes)
        if total == 0:
            return 0.0
        cumulative = 0.0
        weighted = 0.0
        for size in sizes:
            cumulative += size
            weighted += cumulative
        count = len(sizes)
        # Standard formula: G = (n + 1 - 2 * sum(cumulative_i) / total) / n
        return max(0.0, (count + 1 - 2 * weighted / total) / count)

    def largest_worker_share(self, num_workers: int) -> float:
        """Fraction of all shuffled bytes landing on the most loaded worker.

        Partitions are assigned to workers greedily by decreasing size (the
        usual longest-processing-time heuristic), mirroring how the simulated
        cluster spreads reduce buckets.
        """
        if num_workers < 1:
            raise MiningError(f"num_workers must be >= 1, got {num_workers}")
        total = self.total_bytes
        if total == 0:
            return 0.0
        loads = [0] * num_workers
        for size in sorted(self.bytes_by_partition.values(), reverse=True):
            loads[loads.index(min(loads))] += size
        return max(loads) / total

    # ------------------------------------------------------------------ views
    def top(self, k: int, dictionary: Dictionary | None = None) -> list[tuple]:
        """The ``k`` largest partitions as ``(key, bytes, records)`` tuples.

        If a dictionary is given and keys are item fids, keys are decoded to
        gids for readability.
        """
        ranked = sorted(
            self.bytes_by_partition.items(), key=lambda kv: (-kv[1], str(kv[0]))
        )[:k]
        rows = []
        for key, size in ranked:
            label = key
            if dictionary is not None and isinstance(key, int) and key in dictionary:
                label = dictionary.gid_of(key)
            rows.append((label, size, self.records_by_partition.get(key, 0)))
        return rows

    def histogram(self, num_bins: int = 10) -> list[tuple[int, int, int]]:
        """Histogram of partition sizes: ``(lower_bound, upper_bound, count)``.

        Bins are logarithmic in partition size (powers of two), which matches
        how skewed the sizes typically are.
        """
        sizes = list(self.bytes_by_partition.values())
        if not sizes:
            return []
        bins: dict[int, int] = defaultdict(int)
        for size in sizes:
            exponent = 0 if size <= 1 else int(math.log2(size))
            bins[exponent] += 1
        rows = []
        for exponent in sorted(bins):
            rows.append((2**exponent, 2 ** (exponent + 1) - 1, bins[exponent]))
        return rows[:num_bins] if num_bins else rows

    def as_dict(self) -> dict[str, float]:
        """Flat summary used by reports and benchmarks."""
        return {
            "partitions": self.num_partitions,
            "total_bytes": self.total_bytes,
            "total_records": self.total_records,
            "max_bytes": self.max_bytes,
            "mean_bytes": round(self.mean_bytes, 1),
            "imbalance": round(self.imbalance, 2),
            "gini": round(self.gini(), 3),
        }


# ------------------------------------------------------------------ measuring
def measure_partition_balance(
    job: MapReduceJob, records: Iterable[Sequence[int]], use_combiner: bool | None = None
) -> PartitionBalance:
    """Run only the map (and combine) phase of ``job`` and group by key.

    ``use_combiner`` overrides the job's own setting; the default is to follow
    the job (as the simulated cluster does).
    """
    apply_combiner = job.use_combiner if use_combiner is None else use_combiner
    per_key_values: dict = defaultdict(list)
    for record in records:
        for key, value in job.map(record):
            per_key_values[key].append(value)

    balance = PartitionBalance()
    for key, values in per_key_values.items():
        if apply_combiner:
            emitted = list(job.combine(key, values))
        else:
            emitted = [(key, value) for value in values]
        size = sum(job.record_size(emit_key, value) for emit_key, value in emitted)
        balance.bytes_by_partition[key] = size
        balance.records_by_partition[key] = len(emitted)
    return balance


def dseq_partition_balance(
    patex: PatEx | str,
    sigma: int,
    dictionary: Dictionary,
    database: SequenceDatabase | Sequence[Sequence[int]],
    **options,
) -> PartitionBalance:
    """Partition balance of D-SEQ's map output for one constraint."""
    patex = PatEx(patex) if isinstance(patex, str) else patex
    job = DSeqJob(patex.compile(dictionary), dictionary, sigma, **options)
    return measure_partition_balance(job, list(database))


def dcand_partition_balance(
    patex: PatEx | str,
    sigma: int,
    dictionary: Dictionary,
    database: SequenceDatabase | Sequence[Sequence[int]],
    **options,
) -> PartitionBalance:
    """Partition balance of D-CAND's map output for one constraint."""
    patex = PatEx(patex) if isinstance(patex, str) else patex
    job = DCandJob(patex.compile(dictionary), dictionary, sigma, **options)
    return measure_partition_balance(job, list(database))
