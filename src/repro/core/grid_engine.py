"""Flat pivot-grid engine: columnar position–state grid plus per-worker memos.

The position–state grid (Sec. V-A/V-B) is the dominant map-side computation of
D-SEQ and the early-stopping oracle of the pivot-aware local miner.  The
reference implementation in :mod:`repro.core.pivot_search` is deliberately
literal — one :class:`~repro.core.pivot_search.GridEdge` dataclass per live
edge and a ``dict[state] -> set`` pivot table per position.  This module is the
performance engine built on the same theory:

* :class:`FlatPivotGrid` stores the live edges in an arena of parallel
  ``array`` columns (source/target/tid plus a per-position offsets index and a
  flat output-item column) instead of per-edge objects; pivot sets are carried
  as **sorted runs** (tuples ordered ascending) and the ⊕ merge of Theorem 1 is
  evaluated over the sorted runs directly, with an O(1) fast path for ε output
  sets.  One fused backward pass over the columns precomputes everything
  :func:`~repro.core.rewriting.rewrite_for_pivot` and
  ``last_pivot_producing_position`` ask later, so the per-pivot queries of
  D-SEQ's map loop are array scans and dict lookups instead of re-walks of the
  edge lists.
* :func:`cached_grid` is a bounded per-worker memo of built grids, keyed by
  ``(grid engine, kernel fingerprint, encoded sequence, frequency filter)``:
  repeated sequences across chunks — and the same rewritten sequence arriving
  in several reduce partitions — build their grid once per worker process.
  :class:`GridMemoWarmup` ships the sizing (and the mining kernel) through the
  persistent pool initializer.

``grid="legacy"`` selects the reference engine everywhere the knob is exposed
(miners, :class:`~repro.mapreduce.ClusterConfig`, ``--grid``); the
differential suite proves the two engines equivalent, mirroring the
compiled/interpreted kernel pair.
"""

from __future__ import annotations

import threading
from array import array
from bisect import bisect_left
from collections.abc import Sequence

from repro.core.pivot_search import GridEdge, PositionStateGrid
from repro.dictionary import EPSILON_FID, Dictionary
from repro.errors import MiningError
from repro.fst import Fst, MiningKernel, ensure_kernel
from repro.fst.labels import EPSILON_OUTPUT

#: Grid-engine names accepted by miners, ``ClusterConfig``, and ``--grid``.
GRIDS = ("flat", "legacy")

#: Grid engine used when none is requested explicitly.
DEFAULT_GRID = "flat"

#: Sentinel "no non-ε output at this position" (larger than any fid).
_NO_OUTPUT = (1 << 64) - 1


def normalize_grid(grid: str | None) -> str:
    """Map a user-provided grid-engine name to a canonical one (None → default)."""
    if grid is None:
        return DEFAULT_GRID
    name = str(grid).strip().lower()
    if name not in GRIDS:
        raise MiningError(
            f"unknown grid engine {grid!r}; choose one of {', '.join(GRIDS)}"
        )
    return name


# ------------------------------------------------------------ sorted-run merge
def merge_sorted_runs(
    left: Sequence[int], right: Sequence[int]
) -> tuple[int, ...]:
    """The ⊕ operator of Theorem 1 over two *sorted* runs of distinct items.

    ``U ⊕ Q = {ω ∈ U | ω ≥ min(Q)} ∪ {ω ∈ Q | ω ≥ min(U)}`` — with sorted
    runs both operand restrictions are suffixes found by one bisect each, and
    the union is a linear merge.  Returns a sorted tuple; an empty operand
    annihilates the merge, exactly like :func:`~repro.core.pivot_search.pivot_merge`.
    """
    if not left or not right:
        return ()
    min_left = left[0]
    min_right = right[0]
    i = 0 if min_left >= min_right else bisect_left(left, min_right)
    j = 0 if min_right >= min_left else bisect_left(right, min_left)
    left_size = len(left)
    right_size = len(right)
    merged: list[int] = []
    append = merged.append
    while i < left_size and j < right_size:
        a = left[i]
        b = right[j]
        if a < b:
            append(a)
            i += 1
        elif b < a:
            append(b)
            j += 1
        else:
            append(a)
            i += 1
            j += 1
    if i < left_size:
        merged.extend(left[i:])
    elif j < right_size:
        merged.extend(right[j:])
    return tuple(merged)


def union_sorted_runs(left: tuple[int, ...], right: tuple[int, ...]) -> tuple[int, ...]:
    """Union of two sorted runs of distinct items, as a sorted run."""
    if not left:
        return right
    if not right:
        return left
    if left[-1] < right[0]:
        return left + right
    if right[-1] < left[0]:
        return right + left
    merged: list[int] = []
    append = merged.append
    i = j = 0
    left_size = len(left)
    right_size = len(right)
    while i < left_size and j < right_size:
        a = left[i]
        b = right[j]
        if a < b:
            append(a)
            i += 1
        elif b < a:
            append(b)
            j += 1
        else:
            append(a)
            i += 1
            j += 1
    merged.extend(left[i:] if i < left_size else right[j:])
    return tuple(merged)


# ------------------------------------------------------------------- the grid
class FlatPivotGrid:
    """Columnar position–state grid (the ``grid="flat"`` engine).

    Construction runs the same forward dynamic program as
    :class:`~repro.core.pivot_search.PositionStateGrid` — every recorded edge,
    reachable coordinate, and pivot set is identical, which is what the
    differential suite checks — but the representation is flat:

    * live edges live in parallel ``array('q')`` columns
      (source/target/transition id) addressed by a per-position offsets index,
      with their frequency-filtered output items in one flat column;
    * pivot sets ``K(i, q)`` are sorted tuples merged with
      :func:`merge_sorted_runs` (⊕) and :func:`union_sorted_runs`, with ε
      output sets short-circuiting to the unchanged source run;
    * one backward pass fuses the queries: per-position change-state flags and
      minimum producible output item (which answer
      :meth:`relevant_range` for *any* pivot with an array scan) and the
      last producing position of every output item (which answers
      :meth:`last_pivot_producing_position` with a dict lookup).

    The interface mirrors the legacy grid, so
    :func:`~repro.core.rewriting.rewrite_for_pivot` and the miners accept
    either engine.
    """

    kind = "flat"

    def __init__(
        self,
        fst: Fst | MiningKernel,
        sequence: Sequence[int],
        dictionary: Dictionary | None = None,
        max_frequent_fid: int | None = None,
    ) -> None:
        kernel = ensure_kernel(fst, dictionary)
        self.kernel = kernel
        self.fst = kernel.fst
        self.sequence = tuple(sequence)
        self.dictionary = kernel.dictionary
        self.max_frequent_fid = max_frequent_fid
        n = len(self.sequence)
        self._alive = kernel.reachability_table(self.sequence)
        self._has_accepting_run = (
            self._alive[0][kernel.initial_state]
            if self.sequence
            else kernel.is_final(kernel.initial_state)
        )
        # Edge arena: parallel columns, addressed per position through
        # ``_edge_bounds`` (edges consuming position p occupy
        # ``[_edge_bounds[p - 1], _edge_bounds[p])``).
        self._edge_source = array("q")
        self._edge_target = array("q")
        self._edge_tid = array("q")
        self._edge_bounds = array("q", bytes(8 * (n + 1)))
        self._out_items = array("Q")
        self._out_start = array("q", (0,))
        # K(i, q) as sorted runs, one dict per position.
        self._pivots: list[dict[int, tuple[int, ...]]] = [{} for _ in range(n + 1)]
        # Fused backward summary (see _summarize).
        self._pos_changes_state = bytearray(n + 1)
        self._pos_min_output = array("Q", (_NO_OUTPUT,) * (n + 1))
        self._last_producing: dict[int, int] = {}
        if self._has_accepting_run and self.sequence:
            self._build()
            self._summarize()

    # ------------------------------------------------------------ construction
    def _build(self) -> None:
        kernel = self.kernel
        sequence = self.sequence
        max_frequent_fid = self.max_frequent_fid
        alive = self._alive
        edge_source = self._edge_source
        edge_target = self._edge_target
        edge_tid = self._edge_tid
        bounds = self._edge_bounds
        out_items = self._out_items
        out_start = self._out_start
        matching = kernel.matching
        target_of = kernel.target
        filtered_outputs = kernel.filtered_outputs
        previous: dict[int, tuple[int, ...]] = {kernel.initial_state: EPSILON_OUTPUT}
        self._pivots[0] = previous
        for position in range(1, len(sequence) + 1):
            item = sequence[position - 1]
            alive_row = alive[position]
            current: dict[int, tuple[int, ...]] = {}
            for source, source_pivots in previous.items():
                if not source_pivots:
                    continue
                for tid in matching(source, item):
                    target = target_of(tid)
                    if not alive_row[target]:
                        continue
                    outputs = filtered_outputs(tid, item, max_frequent_fid)
                    edge_source.append(source)
                    edge_target.append(target)
                    edge_tid.append(tid)
                    out_items.extend(outputs)
                    out_start.append(len(out_items))
                    if outputs == EPSILON_OUTPUT:
                        # U ⊕ {ε} = U: share the source run, no allocation.
                        contribution = source_pivots
                    else:
                        contribution = merge_sorted_runs(source_pivots, outputs)
                    bucket = current.get(target)
                    if bucket is None:
                        # Record the coordinate even when no frequent candidate
                        # passes through this particular edge (empty run).
                        current[target] = contribution
                    elif contribution and bucket is not contribution:
                        current[target] = union_sorted_runs(bucket, contribution)
            bounds[position] = len(edge_source)
            self._pivots[position] = current
            previous = current

    def _summarize(self) -> None:
        """One backward pass fusing every per-pivot query the grid serves.

        Fills the per-position change-state flags and minimum non-ε output
        item (the :meth:`relevant_range` oracle) and the last position able to
        produce each output item (the :meth:`last_pivot_producing_position`
        oracle; walking backward means the first sighting of an item *is* its
        last producing position).
        """
        bounds = self._edge_bounds
        sources = self._edge_source
        targets = self._edge_target
        out_items = self._out_items
        out_start = self._out_start
        changes = self._pos_changes_state
        minima = self._pos_min_output
        last = self._last_producing
        for position in range(len(self.sequence), 0, -1):
            minimum = _NO_OUTPUT
            for edge in range(bounds[position - 1], bounds[position]):
                if sources[edge] != targets[edge]:
                    changes[position] = 1
                for index in range(out_start[edge], out_start[edge + 1]):
                    item = out_items[index]
                    if item == EPSILON_FID:
                        continue
                    if item not in last:
                        last[item] = position
                    if item < minimum:
                        minimum = item
            minima[position] = minimum

    # ------------------------------------------------------------------ access
    @property
    def has_accepting_run(self) -> bool:
        """True iff the FST accepts the sequence at all."""
        return self._has_accepting_run

    @property
    def alive(self) -> list[list[bool]]:
        """The kernel's reachability table (shared, read-only by convention)."""
        return self._alive

    def edges_at(self, position: int) -> list[GridEdge]:
        """Live edges consuming the item at 1-based ``position`` (materialized)."""
        kernel = self.kernel
        out_start = self._out_start
        edges = []
        for index in range(self._edge_bounds[position - 1], self._edge_bounds[position]):
            tid = self._edge_tid[index]
            edges.append(
                GridEdge(
                    position=position,
                    source=self._edge_source[index],
                    target=self._edge_target[index],
                    transition=kernel.transition(tid),
                    outputs=tuple(self._out_items[out_start[index] : out_start[index + 1]]),
                )
            )
        return edges

    def live_edges(self):
        """All live edges in position order (materialized for inspection)."""
        for position in range(1, len(self.sequence) + 1):
            yield from self.edges_at(position)

    def pivot_set(self, position: int, state: int) -> set[int]:
        """``K(i, q)``: pivots of the partial runs ending at (position, state)."""
        return set(self._pivots[position].get(state, ()))

    def pivot_items(self) -> set[int]:
        """``K(T)``: the pivot items of the whole input sequence."""
        if not self._has_accepting_run:
            return set()
        row = self._pivots[len(self.sequence)]
        pivots: set[int] = set()
        for state in self.kernel.final_states:
            run = row.get(state)
            if run:
                pivots.update(run)
        pivots.discard(EPSILON_FID)
        return pivots

    # ------------------------------------------------ rewriting & early stopping
    def relevant_range(self, pivot: int) -> tuple[int, int]:
        """First and last relevant 1-based positions for ``pivot`` (Sec. V-B).

        A position is relevant when a live edge there changes the FST state or
        can produce a non-ε output item ``<= pivot`` — precomputed per
        position, so each query is two early-exiting array scans.
        """
        n = len(self.sequence)
        changes = self._pos_changes_state
        minima = self._pos_min_output
        first = 0
        for position in range(1, n + 1):
            if changes[position] or minima[position] <= pivot:
                first = position
                break
        if not first:
            return 1, n
        for position in range(n, first - 1, -1):
            if changes[position] or minima[position] <= pivot:
                return first, position
        return first, first  # pragma: no cover - first always qualifies

    def last_pivot_producing_position(self, pivot: int) -> int:
        """The last 1-based position whose live edges can output ``pivot``."""
        return self._last_producing.get(pivot, 0)


# ------------------------------------------------- incremental trie extension
class GrowableFlatGrid:
    """Shared forward state for trie-batched :class:`FlatPivotGrid` builds.

    The batch-map layer (:mod:`repro.core.prefix_batch`) walks a trie over the
    unique encoded sequences of a chunk and drives the kernel once per trie
    *node*: :meth:`extend` appends one position's arena columns and pivot row,
    :meth:`mark`/:meth:`rewind` make sibling branches share the prefix columns
    without copying, and :meth:`snapshot` freezes the current path into a real
    :class:`FlatPivotGrid`.

    The forward step here is *unfiltered*: it keeps the "skip empty pivot
    runs" rule but drops the per-target reachability check, because the
    reachability table depends on the whole sequence (it looks ahead to the
    suffix) and the suffix differs per trie branch.  :meth:`snapshot` restores
    exactly the filtered grid: it computes the leaf's reachability table and
    keeps only the arena columns and row entries whose coordinates are alive.
    Dead sources can only produce dead targets (a source with a live edge into
    an alive target is itself alive one position earlier), so filtering the
    unfiltered arena by target liveness reproduces the per-sequence build
    edge for edge — which is what the equivalence suite checks.
    """

    __slots__ = (
        "kernel",
        "max_frequent_fid",
        "_sequence",
        "_rows",
        "_edge_source",
        "_edge_target",
        "_edge_tid",
        "_out_items",
        "_out_start",
        "_bounds",
    )

    def __init__(
        self,
        fst: Fst | MiningKernel,
        dictionary: Dictionary | None = None,
        max_frequent_fid: int | None = None,
    ) -> None:
        kernel = ensure_kernel(fst, dictionary)
        self.kernel = kernel
        self.max_frequent_fid = max_frequent_fid
        self._sequence: list[int] = []
        self._rows: list[dict[int, tuple[int, ...]]] = [
            {kernel.initial_state: EPSILON_OUTPUT}
        ]
        # Plain lists, not arrays: the growable arena is append/truncate-heavy
        # and list ops are cheaper; :meth:`snapshot` converts the kept columns
        # to the arrays :class:`FlatPivotGrid` stores in one C pass.
        self._edge_source: list[int] = []
        self._edge_target: list[int] = []
        self._edge_tid: list[int] = []
        self._out_items: list[int] = []
        self._out_start: list[int] = [0]
        self._bounds = [0]

    def __len__(self) -> int:
        return len(self._sequence)

    def extend(self, item: int) -> None:
        """Append one position: the forward DP step consuming ``item``."""
        kernel = self.kernel
        max_frequent_fid = self.max_frequent_fid
        edge_source = self._edge_source
        edge_target = self._edge_target
        edge_tid = self._edge_tid
        out_items = self._out_items
        out_start = self._out_start
        matching = kernel.matching
        target_of = kernel.target
        filtered_outputs = kernel.filtered_outputs
        current: dict[int, tuple[int, ...]] = {}
        for source, source_pivots in self._rows[-1].items():
            if not source_pivots:
                continue
            for tid in matching(source, item):
                target = target_of(tid)
                outputs = filtered_outputs(tid, item, max_frequent_fid)
                edge_source.append(source)
                edge_target.append(target)
                edge_tid.append(tid)
                out_items.extend(outputs)
                out_start.append(len(out_items))
                if outputs == EPSILON_OUTPUT:
                    contribution = source_pivots
                else:
                    contribution = merge_sorted_runs(source_pivots, outputs)
                bucket = current.get(target)
                if bucket is None:
                    current[target] = contribution
                elif contribution and bucket is not contribution:
                    current[target] = union_sorted_runs(bucket, contribution)
        self._sequence.append(item)
        self._rows.append(current)
        self._bounds.append(len(edge_source))

    def mark(self) -> tuple[int, int, int]:
        """Opaque restore point for :meth:`rewind` (taken before a branch)."""
        return (len(self._sequence), len(self._edge_source), len(self._out_items))

    def rewind(self, mark: tuple[int, int, int]) -> None:
        """Truncate back to ``mark``, dropping every position added since."""
        positions, edges, outputs = mark
        del self._sequence[positions:]
        del self._rows[positions + 1 :]
        del self._bounds[positions + 1 :]
        del self._edge_source[edges:]
        del self._edge_target[edges:]
        del self._edge_tid[edges:]
        del self._out_start[edges + 1 :]
        del self._out_items[outputs:]

    def snapshot(self) -> FlatPivotGrid:
        """Freeze the current path into a standalone :class:`FlatPivotGrid`.

        Computes the leaf sequence's reachability table, copies the shared
        arena columns and pivot rows restricted to alive coordinates, and runs
        the stock fused backward pass — the result is indistinguishable from
        ``FlatPivotGrid(kernel, sequence)``.
        """
        kernel = self.kernel
        sequence = tuple(self._sequence)
        n = len(sequence)
        grid = FlatPivotGrid.__new__(FlatPivotGrid)
        grid.kernel = kernel
        grid.fst = kernel.fst
        grid.sequence = sequence
        grid.dictionary = kernel.dictionary
        grid.max_frequent_fid = self.max_frequent_fid
        alive = kernel.reachability_table(sequence)
        grid._alive = alive
        grid._has_accepting_run = (
            alive[0][kernel.initial_state]
            if sequence
            else kernel.is_final(kernel.initial_state)
        )
        grid._edge_source = array("q")
        grid._edge_target = array("q")
        grid._edge_tid = array("q")
        grid._edge_bounds = array("q", bytes(8 * (n + 1)))
        grid._out_items = array("Q")
        grid._out_start = array("q", (0,))
        grid._pivots = [{} for _ in range(n + 1)]
        grid._pos_changes_state = bytearray(n + 1)
        grid._pos_min_output = array("Q", (_NO_OUTPUT,) * (n + 1))
        grid._last_producing = {}
        if not (grid._has_accepting_run and sequence):
            return grid
        sources = self._edge_source
        targets = self._edge_target
        tids = self._edge_tid
        out_items = self._out_items
        out_start = self._out_start
        bounds = self._bounds
        kept_source: list[int] = []
        kept_target: list[int] = []
        kept_tid: list[int] = []
        kept_out: list[int] = []
        kept_start: list[int] = [0]
        grid._pivots[0] = dict(self._rows[0])
        for position in range(1, n + 1):
            alive_row = alive[position]
            row = self._rows[position]
            begin = bounds[position - 1]
            end = bounds[position]
            # Every edge target at this position is a key of ``row`` — when
            # none of them is dead, the whole block survives the filter and
            # copies as C-level array slices instead of edge by edge.
            clean = True
            for state in row:
                if not alive_row[state]:
                    clean = False
                    break
            if clean:
                kept_source.extend(sources[begin:end])
                kept_target.extend(targets[begin:end])
                kept_tid.extend(tids[begin:end])
                kept_out.extend(out_items[out_start[begin] : out_start[end]])
                shift = out_start[begin] - kept_start[-1]
                if shift:
                    kept_start.extend(
                        offset - shift for offset in out_start[begin + 1 : end + 1]
                    )
                else:
                    kept_start.extend(out_start[begin + 1 : end + 1])
                grid._pivots[position] = dict(row)
            else:
                for source, target, tid, out_lo, out_hi in zip(
                    sources[begin:end],
                    targets[begin:end],
                    tids[begin:end],
                    out_start[begin : end + 1],
                    out_start[begin + 1 : end + 1],
                ):
                    if not alive_row[target]:
                        continue
                    kept_source.append(source)
                    kept_target.append(target)
                    kept_tid.append(tid)
                    kept_out.extend(out_items[out_lo:out_hi])
                    kept_start.append(len(kept_out))
                grid._pivots[position] = {
                    state: run for state, run in row.items() if alive_row[state]
                }
            grid._edge_bounds[position] = len(kept_source)
        grid._edge_source = array("q", kept_source)
        grid._edge_target = array("q", kept_target)
        grid._edge_tid = array("q", kept_tid)
        grid._out_items = array("Q", kept_out)
        grid._out_start = array("q", kept_start)
        grid._summarize()
        return grid


#: Engine name -> grid class.
_GRID_CLASSES = {"flat": FlatPivotGrid, "legacy": PositionStateGrid}


def make_grid(
    fst: Fst | MiningKernel,
    sequence: Sequence[int],
    dictionary: Dictionary | None = None,
    max_frequent_fid: int | None = None,
    grid: str | None = None,
) -> FlatPivotGrid | PositionStateGrid:
    """Build a position–state grid with the requested engine (None → flat)."""
    grid_class = _GRID_CLASSES[normalize_grid(grid)]
    return grid_class(fst, sequence, dictionary, max_frequent_fid=max_frequent_fid)


# ------------------------------------------------------------ per-worker memo
#: Default bound on memoized grids per worker process.  Entries are small
#: (columns of one input sequence), so the bound is about cycling gracefully
#: on long jobs, not about tight memory pressure.  Pool workers die with
#: their job; on in-process backends the (bounded) memo deliberately
#: outlives the job so repeated mining over the same corpus stays warm —
#: call :func:`clear_grid_memo` or ``set_grid_memo_limit(0)`` to reclaim.
DEFAULT_GRID_MEMO_LIMIT = 1024

_memo_limit = DEFAULT_GRID_MEMO_LIMIT
_GRID_MEMO: dict = {}
_memo_lock = threading.Lock()
_memo_hits = 0
_memo_misses = 0


def set_grid_memo_limit(limit: int) -> None:
    """Resize (or, with 0, disable) this process's grid memo."""
    global _memo_limit
    if limit < 0:
        raise MiningError(f"grid memo limit must be >= 0, got {limit}")
    with _memo_lock:
        _memo_limit = limit
        while len(_GRID_MEMO) > limit:
            _GRID_MEMO.pop(next(iter(_GRID_MEMO)), None)


def clear_grid_memo() -> None:
    """Drop every memoized grid and reset the hit/miss counters (tests)."""
    global _memo_hits, _memo_misses
    with _memo_lock:
        _GRID_MEMO.clear()
        _memo_hits = 0
        _memo_misses = 0


def grid_memo_info() -> dict[str, int]:
    """Size, limit, and hit/miss counters of this process's grid memo."""
    return {
        "size": len(_GRID_MEMO),
        "limit": _memo_limit,
        "hits": _memo_hits,
        "misses": _memo_misses,
    }


class _SpanKey:
    """Memo-key component that reuses a precomputed span hash.

    Records produced by the dedup store's ``unique_view()`` carry the hash of
    their already-encoded span; wrapping the item tuple with that hash skips
    re-encoding and re-hashing the sequence bytes on every memo lookup.
    Equality still compares the items themselves, so a hash collision can only
    cost a probe, never return the wrong grid.  A ``_SpanKey`` never compares
    equal to the plain ``bytes`` encoding, so mixing hashed and raw records
    can at worst duplicate a memo entry.
    """

    __slots__ = ("_items", "_hash")

    def __init__(self, items: tuple, span_hash: int) -> None:
        self._items = items
        self._hash = span_hash

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other) -> bool:
        if isinstance(other, _SpanKey):
            return self._items == other._items
        return NotImplemented


def _memo_key(kernel: MiningKernel, sequence, max_frequent_fid, name, span_hash=None):
    # Compiled kernels carry a content fingerprint; interpreted kernels fall
    # back to object identity, which is safe because every memoized grid holds
    # a reference to its kernel (an id cannot be recycled while entries for it
    # remain alive).
    fingerprint = getattr(kernel, "fingerprint", None) or id(kernel)
    if span_hash is not None:
        return (name, fingerprint, _SpanKey(tuple(sequence), span_hash), max_frequent_fid)
    try:
        encoded = array("q", sequence).tobytes()
    except OverflowError:  # fids beyond 2**63 fall back to the tuple itself
        encoded = tuple(sequence)
    return (name, fingerprint, encoded, max_frequent_fid)


def cached_grid(
    fst: Fst | MiningKernel,
    sequence: Sequence[int],
    dictionary: Dictionary | None = None,
    max_frequent_fid: int | None = None,
    grid: str | None = None,
    span_hash: int | None = None,
) -> FlatPivotGrid | PositionStateGrid:
    """A built grid from this worker's memo, building (and caching) on a miss.

    The memo is keyed by ``(grid engine, kernel fingerprint, encoded sequence,
    frequency filter)``, so repeated input sequences across map chunks — and
    the same rewritten sequence landing in several reduce partitions — build
    their grid once per worker process.  Grids are immutable after
    construction, which is what makes sharing them safe.  Pass ``span_hash``
    when the record already carries the dedup store's span hash to skip
    re-encoding the sequence for the key (see :class:`_SpanKey`).
    """
    global _memo_hits, _memo_misses
    kernel = ensure_kernel(fst, dictionary)
    name = normalize_grid(grid)
    key = _memo_key(kernel, sequence, max_frequent_fid, name, span_hash)
    with _memo_lock:
        hit = _GRID_MEMO.get(key)
        if hit is not None:
            _memo_hits += 1
            return hit
        _memo_misses += 1
    built = make_grid(kernel, sequence, max_frequent_fid=max_frequent_fid, grid=name)
    if _memo_limit:
        with _memo_lock:
            while len(_GRID_MEMO) >= _memo_limit:
                _GRID_MEMO.pop(next(iter(_GRID_MEMO)), None)
            _GRID_MEMO[key] = built
    return built


class GridMemoWarmup:
    """Worker-warmup payload: the mining kernel plus the grid-memo sizing.

    Shipped once per worker through the persistent pool initializer
    (:meth:`~repro.mapreduce.job.MapReduceJob.worker_warmup`): unpickling it
    interns the compiled kernel by content fingerprint *and* sizes the
    worker's grid memo, so later task unpickles find both caches warm.
    """

    __slots__ = ("kernel", "limit")

    def __init__(self, kernel, limit: int = DEFAULT_GRID_MEMO_LIMIT) -> None:
        self.kernel = kernel
        self.limit = limit

    def __reduce__(self):
        return (_restore_warmup, (self.kernel, self.limit))


def _restore_warmup(kernel, limit: int) -> GridMemoWarmup:
    set_grid_memo_limit(limit)
    return GridMemoWarmup(kernel, limit)
