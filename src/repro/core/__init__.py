"""Core distributed FSM algorithms: D-SEQ, D-CAND, and baselines."""

from repro.core.balance import (
    JobPlanner,
    PartitionBalance,
    PartitionPlan,
    attach_partition_plan,
    dcand_partition_balance,
    dseq_partition_balance,
    estimate_partition_loads,
    measure_partition_balance,
    plan_job_partitions,
    plan_partitions,
)
from repro.core.dcand import DCandJob, DCandMiner
from repro.core.dseq import DSeqJob, DSeqMiner
from repro.core.grid_engine import (
    DEFAULT_GRID,
    GRIDS,
    FlatPivotGrid,
    cached_grid,
    make_grid,
    normalize_grid,
)
from repro.core.local_mining import DesqDfsMiner
from repro.core.miner import ALGORITHMS, mine
from repro.core.naive import NaiveMiner, SemiNaiveMiner
from repro.core.nfa_mining import NfaLocalMiner
from repro.core.partitioning import (
    group_candidates_by_pivot,
    is_pivot_sequence,
    pivot_item,
    pivot_items_of_candidates,
    subsequence_key,
)
from repro.core.prefix_batch import (
    DEFAULT_MAP_BATCHING,
    MAP_BATCHINGS,
    batched_accepting,
    batched_grids,
    normalize_map_batching,
)
from repro.core.pivot_search import (
    PositionStateGrid,
    pivot_items,
    pivot_merge,
    pivots_by_run_enumeration,
    pivots_of_output_sets,
)
from repro.core.results import MiningResult
from repro.core.rewriting import rewrite_for_pivot, rewrite_statistics

__all__ = [
    "ALGORITHMS",
    "DCandJob",
    "DCandMiner",
    "DEFAULT_GRID",
    "DEFAULT_MAP_BATCHING",
    "DSeqJob",
    "DSeqMiner",
    "DesqDfsMiner",
    "FlatPivotGrid",
    "GRIDS",
    "JobPlanner",
    "MAP_BATCHINGS",
    "MiningResult",
    "NaiveMiner",
    "NfaLocalMiner",
    "PartitionBalance",
    "PartitionPlan",
    "PositionStateGrid",
    "SemiNaiveMiner",
    "attach_partition_plan",
    "batched_accepting",
    "batched_grids",
    "cached_grid",
    "dcand_partition_balance",
    "dseq_partition_balance",
    "estimate_partition_loads",
    "make_grid",
    "measure_partition_balance",
    "group_candidates_by_pivot",
    "is_pivot_sequence",
    "mine",
    "plan_job_partitions",
    "plan_partitions",
    "normalize_grid",
    "normalize_map_batching",
    "pivot_item",
    "pivot_items",
    "pivot_items_of_candidates",
    "pivot_merge",
    "pivots_by_run_enumeration",
    "pivots_of_output_sets",
    "rewrite_for_pivot",
    "rewrite_statistics",
    "subsequence_key",
]
