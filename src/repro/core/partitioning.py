"""Partitioning of the subsequence space (Sec. III).

Two partitioning schemes are used by the paper's framework:

* **subsequence-based** partitioning (NAÏVE / SEMI-NAÏVE): every candidate
  subsequence is its own partition key;
* **item-based** partitioning (D-SEQ / D-CAND): a subsequence belongs to the
  partition of its *pivot item*, the maximum item under the frequency-based
  total order (i.e. its least frequent item, largest fid).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.dictionary import EPSILON_FID


def pivot_item(subsequence: Sequence[int]) -> int:
    """The pivot item κ_ip(S): the maximum fid in the subsequence.

    fids are assigned by decreasing document frequency, so the maximum fid is
    the least frequent item of ``S``.
    """
    if not subsequence:
        raise ValueError("the empty subsequence has no pivot item")
    return max(subsequence)


def subsequence_key(subsequence: Sequence[int]) -> tuple[int, ...]:
    """The subsequence-based partition key κ_sp(S): the subsequence itself."""
    return tuple(subsequence)


def pivot_items_of_candidates(candidates: Iterable[Sequence[int]]) -> set[int]:
    """The item-based partition keys K_ip(T) of a set of candidate subsequences."""
    return {pivot_item(candidate) for candidate in candidates if len(candidate) > 0}


def group_candidates_by_pivot(
    candidates: Iterable[Sequence[int]],
) -> dict[int, set[tuple[int, ...]]]:
    """Split candidates into the per-pivot groups ρ_k(T) of candidate representation."""
    groups: dict[int, set[tuple[int, ...]]] = {}
    for candidate in candidates:
        if not candidate:
            continue
        groups.setdefault(pivot_item(candidate), set()).add(tuple(candidate))
    return groups


def is_pivot_sequence(subsequence: Sequence[int], pivot: int) -> bool:
    """True iff ``subsequence`` is a pivot sequence for ``pivot``.

    A pivot sequence for item ``k`` contains ``k`` and no item larger than
    ``k`` (equivalently, its maximum item is exactly ``k``).
    """
    return bool(subsequence) and max(subsequence) == pivot


def strip_epsilon(items: Iterable[int]) -> tuple[int, ...]:
    """Remove the ε marker (fid 0) from an item collection, keeping order."""
    return tuple(item for item in items if item != EPSILON_FID)
