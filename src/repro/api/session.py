"""The redesigned public mining API: one entry point, one session facade.

Two layers:

* :func:`mine` — the unified, sessionless entry point.  One signature for
  all seven miners (``dseq``, ``dcand``, ``naive``, ``semi-naive``,
  ``lash``/``mg-fsm``, ``desq-dfs``, ``desq-count``): a corpus, a
  constraint, σ, an algorithm name, and a
  :class:`~repro.mapreduce.ClusterConfig`.
* :class:`Session` — the mining-as-a-service facade: attach corpora once,
  query them many times, with compiled FSTs shared across constraint sweeps
  and finished results held in a bounded LRU
  :class:`~repro.service.cache.QueryCache`.  :class:`LocalSession` answers
  in-process; :class:`repro.api.client.ServiceSession` (via
  :func:`repro.api.connect`) answers from a warm ``repro serve`` daemon.
  Both implement this facade identically — a query is byte-identical
  whether served locally or remotely.

Cache keys are ``(corpus content hash, constraint, σ, algorithm,
ClusterConfig fingerprint, extra options)``: content-addressed corpora mean
a re-attach after :meth:`~repro.sequences.database.SequenceDatabase.append`
simply stops matching the stale entries.
"""

from __future__ import annotations

import abc
import threading
from dataclasses import dataclass

from repro.api.corpus import Corpus, as_corpus
from repro.core.dcand import DCandMiner
from repro.core.dseq import DSeqMiner
from repro.core.naive import NaiveMiner, SemiNaiveMiner
from repro.core.results import MiningResult
from repro.datasets.constraints import Constraint
from repro.errors import CorpusNotAttachedError, MiningError
from repro.mapreduce import ClusterConfig
from repro.patex import PatEx
from repro.sequential import GapConstrainedMiner, SequentialDesqCount, SequentialDesqDfs
from repro.service.cache import CacheInfo, QueryCache

#: Accepted algorithm spellings -> canonical name (also the cache-key name).
ALGORITHM_ALIASES = {
    "dseq": "dseq",
    "d-seq": "dseq",
    "dcand": "dcand",
    "d-cand": "dcand",
    "naive": "naive",
    "semi-naive": "semi-naive",
    "seminaive": "semi-naive",
    "lash": "lash",
    "mg-fsm": "mg-fsm",
    "mgfsm": "mg-fsm",
    "desq-dfs": "desq-dfs",
    "desq-count": "desq-count",
}

#: Canonical algorithm names of the unified entry point.
ALGORITHMS = tuple(
    sorted(set(ALGORITHM_ALIASES.values()), key=list(ALGORITHM_ALIASES.values()).index)
)

_FST_CLUSTER_MINERS = {
    "dseq": DSeqMiner,
    "dcand": DCandMiner,
    "naive": NaiveMiner,
    "semi-naive": SemiNaiveMiner,
}

_SEQUENTIAL_MINERS = {
    "desq-dfs": SequentialDesqDfs,
    "desq-count": SequentialDesqCount,
}

#: Gap/length parameters understood by the specialised miners, with the
#: defaults the experiment harness has always applied.
_GAP_PARAMETERS = ("max_gap", "max_length", "min_length", "use_hierarchy")


def canonical_algorithm(algorithm: str) -> str:
    """Normalize an algorithm name (or raise for unknown ones)."""
    name = ALGORITHM_ALIASES.get(str(algorithm).strip().lower())
    if name is None:
        raise MiningError(
            f"unknown algorithm {algorithm!r}; choose one of {', '.join(ALGORITHMS)}"
        )
    return name


def resolve_constraint(
    constraint, sigma: int | None
) -> tuple[str | None, dict | None, int | None]:
    """Normalize the ``constraint`` argument to ``(expression, specialized, σ)``.

    Accepts a pattern-expression string or :class:`~repro.patex.PatEx` (the
    FST miners), a dict of gap/length parameters (the specialised
    LASH/MG-FSM miners), or a :class:`~repro.datasets.constraints.Constraint`
    (which carries both forms plus a default σ).  An explicit ``sigma``
    always wins over the constraint's.
    """
    if isinstance(constraint, Constraint):
        effective = sigma if sigma is not None else constraint.sigma
        return constraint.expression, constraint.specialized, effective
    if isinstance(constraint, PatEx):
        return constraint.expression, None, sigma
    if isinstance(constraint, str):
        return constraint, None, sigma
    if isinstance(constraint, dict):
        unknown = set(constraint) - set(_GAP_PARAMETERS)
        if unknown:
            raise MiningError(
                f"unknown specialised-constraint parameters {sorted(unknown)}; "
                f"expected a subset of {list(_GAP_PARAMETERS)}"
            )
        return None, dict(constraint), sigma
    raise MiningError(
        "constraint must be a pattern expression (str or PatEx), a "
        "gap/length parameter dict, or a repro.datasets Constraint; "
        f"got {type(constraint).__name__}"
    )


def constraint_token(expression: str | None, specialized: dict | None) -> str:
    """The canonical cache-key string of a normalized constraint."""
    if expression is not None:
        return f"patex:{expression}"
    items = sorted((specialized or {}).items())
    return "gap:" + ",".join(f"{key}={value}" for key, value in items)


def _options_token(options: dict) -> str:
    """A stable string over the remaining miner keyword arguments."""
    return ",".join(f"{key}={options[key]!r}" for key in sorted(options))


def mine(
    corpus,
    constraint,
    sigma: int | None = None,
    algorithm: str = "dseq",
    config: ClusterConfig | None = None,
    **options,
) -> MiningResult:
    """Mine ``corpus`` under ``constraint`` — the unified entry point.

    Parameters
    ----------
    corpus:
        A :class:`~repro.api.corpus.Corpus` or a (database, dictionary) pair.
    constraint:
        A pattern expression (``str`` / :class:`~repro.patex.PatEx`) for the
        FST-based algorithms, a gap/length parameter dict (``max_gap``,
        ``max_length``, ``min_length``, ``use_hierarchy``) for the
        specialised ones, or a :class:`~repro.datasets.constraints.Constraint`
        carrying both.
    sigma:
        Minimum support threshold; defaults to the constraint's σ when a
        :class:`~repro.datasets.constraints.Constraint` is given.
    algorithm:
        One of :data:`ALGORITHMS` (a few spellings are accepted).
    config:
        The execution substrate as one
        :class:`~repro.mapreduce.ClusterConfig` (default: the library
        default substrate).  This replaces the per-miner
        ``backend=``/``codec=``/``spill_budget_bytes=`` keywords, which
        were removed after their deprecation cycle.
    options:
        Forwarded to the selected miner (e.g. ``use_rewriting`` for D-SEQ,
        ``max_runs``, ``dedup``).

    Returns
    -------
    MiningResult
        Mapping from pattern (tuple of fids) to frequency, plus job metrics.
    """
    corpus = as_corpus(corpus)
    name = canonical_algorithm(algorithm)
    expression, specialized, sigma = resolve_constraint(constraint, sigma)
    if sigma is None:
        raise MiningError(
            "sigma is required (pass sigma=... or a Constraint that carries it)"
        )
    if sigma < 1:
        raise MiningError(f"sigma must be >= 1, got {sigma}")
    config = config if config is not None else ClusterConfig()

    if name in ("lash", "mg-fsm"):
        options.pop("_patex", None)
        parameters = dict(specialized or {})
        for key in _GAP_PARAMETERS:
            if key in options:
                parameters[key] = options.pop(key)
        return GapConstrainedMiner(
            sigma,
            corpus.dictionary,
            max_gap=parameters.get("max_gap", 1),
            max_length=parameters.get("max_length", 5),
            min_length=parameters.get("min_length", 2),
            use_hierarchy=parameters.get("use_hierarchy", name == "lash"),
            cluster=config,
            **options,
        ).mine(corpus.database)

    if expression is None:
        raise MiningError(
            f"algorithm {name!r} requires a pattern-expression constraint"
        )
    patex = options.pop("_patex", None) or PatEx(expression)
    if name in _SEQUENTIAL_MINERS:
        miner = _SEQUENTIAL_MINERS[name](
            patex, sigma, corpus.dictionary, kernel=config.kernel, **options
        )
        return miner.mine(corpus.database)
    miner = _FST_CLUSTER_MINERS[name](
        patex, sigma, corpus.dictionary, cluster=config, **options
    )
    return miner.mine(corpus.database)


# --------------------------------------------------------------------- session
@dataclass(frozen=True)
class CorpusInfo:
    """What a session reports about one attached corpus."""

    name: str
    sequences: int
    items: int
    content_hash: str

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "sequences": self.sequences,
            "items": self.items,
            "content_hash": self.content_hash,
        }


class Session(abc.ABC):
    """The mining-as-a-service facade: attach corpora, query them warm.

    Implementations answer :meth:`mine` / :meth:`sweep` / :meth:`top_k`
    against corpora previously registered with :meth:`attach_corpus`,
    caching finished results in a bounded LRU keyed by content — so the same
    query against unchanged data is served from memory, and an appended
    corpus cold-starts cleanly after re-attaching.

    Two implementations exist and behave identically:
    :class:`LocalSession` (in-process) and
    :class:`~repro.api.client.ServiceSession` (a ``repro serve`` daemon via
    :func:`repro.api.connect`).
    """

    # ---------------------------------------------------------------- corpora
    @abc.abstractmethod
    def attach_corpus(self, name: str, corpus, dictionary=None) -> CorpusInfo:
        """Register ``corpus`` under ``name`` (replacing any previous one).

        ``corpus`` is a :class:`~repro.api.corpus.Corpus`, a (database,
        dictionary) pair, or a bare database combined with the
        ``dictionary`` argument.  Re-attaching after appending sequences
        updates the content hash, which cold-starts the affected queries.
        """

    @abc.abstractmethod
    def detach_corpus(self, name: str) -> None:
        """Forget the corpus registered under ``name``."""

    @abc.abstractmethod
    def corpora(self) -> dict[str, CorpusInfo]:
        """All attached corpora, by name."""

    # ---------------------------------------------------------------- queries
    @abc.abstractmethod
    def mine(
        self,
        corpus: str,
        constraint,
        sigma: int | None = None,
        algorithm: str = "dseq",
        config: ClusterConfig | None = None,
        **options,
    ) -> MiningResult:
        """Run one query against an attached corpus (cache-aided)."""

    def sweep(
        self,
        corpus: str,
        constraints,
        sigma: int | None = None,
        algorithm: str = "dseq",
        config: ClusterConfig | None = None,
        **options,
    ) -> list[MiningResult]:
        """Run one query per constraint against the same warm corpus.

        Compiled FSTs (and their compiled kernels) are shared across the
        sweep: each distinct expression compiles once per session and is
        reused by every later query that names it.
        """
        return [
            self.mine(
                corpus, constraint, sigma=sigma, algorithm=algorithm,
                config=config, **options,
            )
            for constraint in constraints
        ]

    @abc.abstractmethod
    def top_k(
        self,
        corpus: str,
        constraint,
        k: int,
        sigma: int = 1,
        algorithm: str = "dseq",
        config: ClusterConfig | None = None,
        **options,
    ) -> list[tuple[tuple[int, ...], int]]:
        """The ``k`` most frequent patterns, found with support-based early
        termination.

        Queries run at geometrically decreasing support thresholds starting
        near the corpus size: as soon as a threshold yields at least ``k``
        patterns the descent stops — every pattern outside that result has
        strictly smaller support, so the top-k is exact — and the expensive
        low-σ mine never runs.  ``sigma`` is the floor threshold (patterns
        below it are never reported).  Intermediate results land in the
        query cache, so refining ``k`` or σ stays warm.
        """

    # ------------------------------------------------------------------ cache
    @abc.abstractmethod
    def cache_info(self) -> CacheInfo:
        """Counters of the session's query cache."""

    @abc.abstractmethod
    def clear_cache(self) -> int:
        """Drop all cached results; returns how many entries were dropped."""

    # -------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Release session resources (idempotent)."""

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _coerce_attachment(corpus, dictionary) -> Corpus:
    """Normalize the ``attach_corpus`` arguments to a :class:`Corpus`."""
    if dictionary is not None:
        return Corpus(corpus, dictionary)
    return as_corpus(corpus)


class LocalSession(Session):
    """The in-process :class:`Session`: the library path behind the facade.

    Holds attached corpora (plus their content hashes), a per-session
    :class:`~repro.patex.PatEx` cache (so constraint sweeps share compiled
    FSTs), and the bounded LRU result cache.  Thread-safe: the ``repro
    serve`` daemon shares one instance across client connections.  Cache
    lookups are serialized; cache *misses* mine outside the lock, so
    concurrent distinct queries overlap (two clients racing the same cold
    query may both compute it — the result is identical either way).
    """

    def __init__(self, max_cache_entries: int | None = None) -> None:
        from repro.service.cache import DEFAULT_MAX_ENTRIES

        self._corpora: dict[str, Corpus] = {}
        self._hashes: dict[str, str] = {}
        self._patexes: dict[str, PatEx] = {}
        self._cache = QueryCache(
            DEFAULT_MAX_ENTRIES if max_cache_entries is None else max_cache_entries
        )
        self._lock = threading.RLock()
        self.last_query_cached = False

    # ---------------------------------------------------------------- corpora
    def attach_corpus(self, name: str, corpus, dictionary=None) -> CorpusInfo:
        attached = _coerce_attachment(corpus, dictionary)
        content = attached.content_hash()
        with self._lock:
            self._corpora[str(name)] = attached
            self._hashes[str(name)] = content
        return CorpusInfo(
            name=str(name),
            sequences=len(attached.database),
            items=len(attached.dictionary),
            content_hash=content,
        )

    def detach_corpus(self, name: str) -> None:
        with self._lock:
            if name not in self._corpora:
                raise CorpusNotAttachedError(name, list(self._corpora))
            del self._corpora[name]
            del self._hashes[name]

    def corpora(self) -> dict[str, CorpusInfo]:
        with self._lock:
            return {
                name: CorpusInfo(
                    name=name,
                    sequences=len(corpus.database),
                    items=len(corpus.dictionary),
                    content_hash=self._hashes[name],
                )
                for name, corpus in self._corpora.items()
            }

    def _resolve_corpus(self, name: str) -> tuple[Corpus, str]:
        with self._lock:
            corpus = self._corpora.get(name)
            if corpus is None:
                raise CorpusNotAttachedError(str(name), list(self._corpora))
            return corpus, self._hashes[name]

    def _patex(self, expression: str) -> PatEx:
        """One PatEx per expression per session: FSTs compile once per sweep."""
        with self._lock:
            patex = self._patexes.get(expression)
            if patex is None:
                patex = PatEx(expression)
                self._patexes[expression] = patex
            return patex

    # ---------------------------------------------------------------- queries
    def query(
        self,
        corpus: str,
        constraint,
        sigma: int | None = None,
        algorithm: str = "dseq",
        config: ClusterConfig | None = None,
        **options,
    ) -> tuple[MiningResult, bool]:
        """Like :meth:`mine`, additionally reporting whether the cache hit."""
        attached, content = self._resolve_corpus(corpus)
        name = canonical_algorithm(algorithm)
        expression, specialized, sigma = resolve_constraint(constraint, sigma)
        effective = config if config is not None else ClusterConfig()
        key = (
            content,
            constraint_token(expression, specialized),
            sigma,
            name,
            effective.fingerprint(),
            _options_token(options),
        )
        cached = self._cache.get(key)
        if cached is not None:
            self.last_query_cached = True
            return cached, True
        if expression is not None and name not in ("lash", "mg-fsm"):
            options = {**options, "_patex": self._patex(expression)}
            constraint_value = expression
        elif specialized is not None:
            constraint_value = specialized
        else:
            constraint_value = expression
        result = mine(
            attached,
            constraint_value,
            sigma=sigma,
            algorithm=name,
            config=effective,
            **options,
        )
        self._cache.put(key, result)
        self.last_query_cached = False
        return result, False

    def mine(
        self,
        corpus: str,
        constraint,
        sigma: int | None = None,
        algorithm: str = "dseq",
        config: ClusterConfig | None = None,
        **options,
    ) -> MiningResult:
        result, _ = self.query(
            corpus, constraint, sigma=sigma, algorithm=algorithm,
            config=config, **options,
        )
        return result

    def top_k(
        self,
        corpus: str,
        constraint,
        k: int,
        sigma: int = 1,
        algorithm: str = "dseq",
        config: ClusterConfig | None = None,
        **options,
    ) -> list[tuple[tuple[int, ...], int]]:
        if k < 1:
            raise MiningError(f"k must be >= 1, got {k}")
        if sigma < 1:
            raise MiningError(f"sigma must be >= 1, got {sigma}")
        attached, _ = self._resolve_corpus(corpus)
        # Support never exceeds the number of input sequences, so the descent
        # starts one doubling below it and halves toward the σ floor.
        threshold = max(sigma, len(attached.database))
        while True:
            result = self.mine(
                corpus, constraint, sigma=threshold, algorithm=algorithm,
                config=config, **options,
            )
            if len(result) >= k or threshold <= sigma:
                return result.sorted_patterns()[:k]
            threshold = max(sigma, threshold // 2)

    # ------------------------------------------------------------------ cache
    def cache_info(self) -> CacheInfo:
        return self._cache.info()

    def clear_cache(self) -> int:
        return self._cache.clear()

    def close(self) -> None:
        with self._lock:
            self._corpora.clear()
            self._hashes.clear()
            self._patexes.clear()
        self._cache.clear()
