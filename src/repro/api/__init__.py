"""The blessed public API of the reproduction.

One entry point for all seven miners, and one session facade for
mining-as-a-service::

    import repro.api

    corpus = repro.api.Corpus.from_gid_sequences([["a", "b"], ["a", "c", "b"]])

    # Sessionless: one unified signature for every algorithm.
    result = repro.api.mine(corpus, "(a).*(b)", sigma=2, algorithm="dseq")

    # Warm session: attach once, query many times, results cached.
    with repro.api.LocalSession() as session:
        session.attach_corpus("demo", corpus)
        session.mine("demo", "(a).*(b)", sigma=2)          # cold
        session.mine("demo", "(a).*(b)", sigma=2)          # served from cache
        session.top_k("demo", "(a).*(b)", k=3)             # early-terminating

    # Same facade against a ``repro serve`` daemon, byte-identical results.
    with repro.api.connect(port=9043) as session:
        ...
"""

from repro.api.client import ServiceSession, connect
from repro.api.corpus import Corpus, as_corpus
from repro.api.session import (
    ALGORITHMS,
    CorpusInfo,
    LocalSession,
    Session,
    canonical_algorithm,
    mine,
)

__all__ = [
    "ALGORITHMS",
    "Corpus",
    "CorpusInfo",
    "LocalSession",
    "ServiceSession",
    "Session",
    "as_corpus",
    "canonical_algorithm",
    "connect",
    "mine",
]
