"""The daemon client: the :class:`~repro.api.session.Session` facade over TCP.

:func:`connect` opens a socket to a running ``repro serve`` daemon and
returns a :class:`ServiceSession` — the same facade as
:class:`~repro.api.session.LocalSession`, answered remotely.  Results travel
through :mod:`repro.service.protocol`, which preserves pattern order, fids,
and metrics exactly, so a service-path query is byte-identical to the direct
path.  Server-side failures arrive as structured payloads and re-raise here
as the same :mod:`repro.errors` types a local session would raise.
"""

from __future__ import annotations

import socket

from repro.errors import QueryTimeoutError, ServiceError
from repro.mapreduce import ClusterConfig
from repro.service import protocol
from repro.service.cache import CacheInfo
from repro.service.protocol import DEFAULT_SERVICE_PORT

from repro.api.corpus import as_corpus
from repro.api.session import CorpusInfo, Session


class ServiceSession(Session):
    """A session served by a remote mining daemon.

    One TCP connection, one request in flight at a time (the protocol is
    strictly request/response); open several sessions for concurrent
    clients.  ``timeout`` bounds every round trip — an overrun raises
    :class:`~repro.errors.QueryTimeoutError` and poisons the connection
    (the stranded response could otherwise be misread as the next reply).
    """

    def __init__(self, sock: socket.socket, timeout: float | None = None) -> None:
        self._socket = sock
        self._rfile = sock.makefile("rb")
        self._wfile = sock.makefile("wb")
        self._timeout = timeout
        self._closed = False
        self.last_query_cached = False

    # ------------------------------------------------------------- transport
    def _call(self, operation: str, **request) -> dict:
        if self._closed:
            raise ServiceError("session is closed")
        request["op"] = operation
        self._socket.settimeout(self._timeout)
        try:
            protocol.write_message(self._wfile, request)
            response = protocol.read_message(self._rfile)
        except (TimeoutError, socket.timeout) as error:
            self.close()
            raise QueryTimeoutError(operation, self._timeout or 0.0) from error
        except OSError as error:
            self.close()
            raise ServiceError(f"connection to mining service lost: {error}") from error
        if response is None:
            self.close()
            raise ServiceError("mining service closed the connection")
        if not response.get("ok"):
            protocol.raise_error_payload(response.get("error") or {})
        return response["result"]

    # --------------------------------------------------------------- corpora
    def attach_corpus(self, name: str, corpus, dictionary=None) -> CorpusInfo:
        if dictionary is not None:
            corpus = (corpus, dictionary)
        attached = as_corpus(corpus)
        payload = self._call(
            "attach_corpus", name=str(name), corpus=protocol.encode_corpus(attached)
        )
        return CorpusInfo(**payload)

    def detach_corpus(self, name: str) -> None:
        self._call("detach_corpus", name=name)

    def corpora(self) -> dict[str, CorpusInfo]:
        payload = self._call("corpora")
        return {name: CorpusInfo(**info) for name, info in payload.items()}

    # --------------------------------------------------------------- queries
    def mine(
        self,
        corpus: str,
        constraint,
        sigma: int | None = None,
        algorithm: str = "dseq",
        config: ClusterConfig | None = None,
        **options,
    ):
        payload = self._call(
            "mine",
            corpus=corpus,
            constraint=protocol.encode_constraint(constraint),
            sigma=sigma,
            algorithm=algorithm,
            config=protocol.encode_config(config),
            options=options,
        )
        self.last_query_cached = bool(payload["cached"])
        return protocol.decode_result(payload["result"])

    def sweep(
        self,
        corpus: str,
        constraints,
        sigma: int | None = None,
        algorithm: str = "dseq",
        config: ClusterConfig | None = None,
        **options,
    ):
        # One round trip for the whole sweep; the daemon shares the compiled
        # FSTs across the constraints exactly as LocalSession.sweep does.
        payload = self._call(
            "sweep",
            corpus=corpus,
            constraints=[
                protocol.encode_constraint(constraint) for constraint in constraints
            ],
            sigma=sigma,
            algorithm=algorithm,
            config=protocol.encode_config(config),
            options=options,
        )
        answers = payload["results"]
        if answers:
            self.last_query_cached = bool(answers[-1]["cached"])
        return [protocol.decode_result(answer["result"]) for answer in answers]

    def top_k(
        self,
        corpus: str,
        constraint,
        k: int,
        sigma: int = 1,
        algorithm: str = "dseq",
        config: ClusterConfig | None = None,
        **options,
    ):
        payload = self._call(
            "top_k",
            corpus=corpus,
            constraint=protocol.encode_constraint(constraint),
            k=k,
            sigma=sigma,
            algorithm=algorithm,
            config=protocol.encode_config(config),
            options=options,
        )
        return [
            (tuple(pattern), frequency) for pattern, frequency in payload["patterns"]
        ]

    # ----------------------------------------------------------------- cache
    def cache_info(self) -> CacheInfo:
        return protocol.decode_cache_info(self._call("cache_info"))

    def clear_cache(self) -> int:
        return self._call("clear_cache")["dropped"]

    # ------------------------------------------------------------- lifecycle
    def ping(self, sleep_s: float = 0.0) -> dict:
        """Round-trip health check (``sleep_s`` artificially delays the reply)."""
        return self._call("ping", sleep_s=sleep_s)

    def shutdown_server(self) -> None:
        """Ask the daemon to stop serving (the connection closes after)."""
        self._call("shutdown")
        self.close()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for stream in (self._rfile, self._wfile):
            try:
                stream.close()
            except OSError:  # pragma: no cover - best-effort teardown
                pass
        try:
            self._socket.close()
        except OSError:  # pragma: no cover - best-effort teardown
            pass


def connect(
    host: str = "127.0.0.1",
    port: int = DEFAULT_SERVICE_PORT,
    timeout: float | None = None,
    connect_timeout: float = 5.0,
) -> ServiceSession:
    """Open a :class:`ServiceSession` to a running ``repro serve`` daemon.

    ``port`` defaults to :data:`~repro.service.protocol.DEFAULT_SERVICE_PORT`
    — the port ``repro serve`` binds by default — so a plain ``connect()``
    reaches a plainly started daemon.  ``timeout`` (seconds) bounds each
    query round trip; ``None`` waits indefinitely.  The returned session is
    a context manager::

        with repro.api.connect() as session:
            session.attach_corpus("demo", corpus)
            result = session.mine("demo", "(a).*(b)", sigma=2)
    """
    if port == 0:
        # Port 0 is a *bind* convention (pick an ephemeral port); no daemon
        # can ever be listening on it, so dialing it is always a mistake —
        # usually a server's requested port leaking into the client call.
        raise ServiceError(
            "cannot connect to port 0: it asks the OS for an ephemeral port "
            "and is only meaningful when *binding* a server; pass the port "
            "the daemon printed at startup (repro serve defaults to "
            f"{DEFAULT_SERVICE_PORT})"
        )
    try:
        sock = socket.create_connection((host, port), timeout=connect_timeout)
    except OSError as error:
        raise ServiceError(
            f"cannot reach mining service at {host}:{port}: {error}"
        ) from error
    # hot queries answer in microseconds; Nagle would add ~40ms per round trip
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    sock.settimeout(timeout)
    return ServiceSession(sock, timeout=timeout)
