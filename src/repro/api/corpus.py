"""The corpus value object of the public API: data plus vocabulary, hashed.

Every query in :mod:`repro.api` runs against a :class:`Corpus` — one
:class:`~repro.sequences.database.SequenceDatabase` paired with the
:class:`~repro.dictionary.dictionary.Dictionary` that encodes it.  The pair
is what the paper's preprocessing step produces, what every miner consumes,
and what the service layer attaches once and mines many times; its
:meth:`Corpus.content_hash` (store block digest + dictionary fingerprint) is
the corpus component of the query-cache key.
"""

from __future__ import annotations

import hashlib
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.dictionary import Dictionary, Hierarchy
from repro.errors import MiningError
from repro.sequences import SequenceDatabase


@dataclass(frozen=True)
class Corpus:
    """An immutable (database, dictionary) pair — the unit queries run on.

    Example::

        corpus = Corpus.from_gid_sequences([["a", "b"], ["a", "c", "b"]])
        result = repro.api.mine(corpus, "(a).*(b)", sigma=2)
    """

    database: SequenceDatabase
    dictionary: Dictionary

    @classmethod
    def from_gid_sequences(
        cls,
        raw_sequences: Iterable[Sequence[str]],
        hierarchy: Hierarchy | None = None,
    ) -> "Corpus":
        """Run the paper's preprocessing step: build the f-list and encode."""
        from repro.sequences import preprocess

        dictionary, database = preprocess(raw_sequences, hierarchy)
        return cls(database, dictionary)

    def content_hash(self) -> str:
        """SHA-1 digest of the corpus content: sequences *and* vocabulary.

        Combines the encoded store's block digest with the dictionary's
        content fingerprint, so appending sequences — or re-encoding through
        a different dictionary — changes the hash (and thereby cold-starts
        cached queries keyed on it).
        """
        digest = hashlib.sha1(self.database.content_hash().encode("ascii"))
        digest.update(self.dictionary.content_fingerprint())
        return digest.hexdigest()

    def __len__(self) -> int:
        return len(self.database)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Corpus(sequences={len(self.database)}, items={len(self.dictionary)})"


def as_corpus(value) -> Corpus:
    """Coerce the public API's ``corpus`` argument to a :class:`Corpus`.

    Accepts a :class:`Corpus`, or a 2-tuple holding one
    :class:`~repro.sequences.database.SequenceDatabase` and one
    :class:`~repro.dictionary.dictionary.Dictionary` in either order (so both
    ``(database, dictionary)`` and :func:`~repro.sequences.preprocess`'s
    ``(dictionary, database)`` work verbatim).
    """
    if isinstance(value, Corpus):
        return value
    if isinstance(value, tuple) and len(value) == 2:
        first, second = value
        if isinstance(first, SequenceDatabase) and isinstance(second, Dictionary):
            return Corpus(first, second)
        if isinstance(first, Dictionary) and isinstance(second, SequenceDatabase):
            return Corpus(second, first)
    raise MiningError(
        "expected a Corpus or a (database, dictionary) pair, "
        f"got {type(value).__name__}"
    )
