"""Compact serialization of output NFAs (Sec. VI-A, "Serialization").

The format follows the paper's scheme: transitions are written in DFS order;
the source state is written only when it differs from the target of the
previously written transition, the target state is written only when it was
visited before, and a "final" marker is attached when a newly visited target
state is final.  Integers are encoded as unsigned LEB128 varints.

The serialization is canonical (edges are visited in sorted label order), so
identical NFAs produce identical byte strings — which is what makes the
MapReduce combine-style aggregation of D-CAND effective.
"""

from __future__ import annotations

from repro.errors import NfaError
from repro.nfa.nfa import OutputNfa
from repro.varint import read_varint, write_varint

_FLAG_HAS_SOURCE = 1
_FLAG_HAS_TARGET = 2
_FLAG_TARGET_FINAL = 4


# ------------------------------------------------------------------- varints
def _write_varint(buffer: bytearray, value: int) -> None:
    write_varint(buffer, value, error=NfaError)


def _read_varint(data: bytes, offset: int) -> tuple[int, int]:
    return read_varint(data, offset, error=NfaError, what="varint in serialized NFA")


# --------------------------------------------------------------- serialization
def serialize(nfa: OutputNfa) -> bytes:
    """Serialize an output NFA into a compact canonical byte string."""
    buffer = bytearray()
    buffer.append(1 if nfa.is_final(0) else 0)

    visit_number: dict[int, int] = {0: 0}
    current = 0

    def emit(source: int) -> None:
        nonlocal current
        for label, target in sorted(nfa.outgoing(source)):
            flags = 0
            if source != current:
                flags |= _FLAG_HAS_SOURCE
            target_known = target in visit_number
            if target_known:
                flags |= _FLAG_HAS_TARGET
            elif nfa.is_final(target):
                flags |= _FLAG_TARGET_FINAL
            buffer.append(flags)
            if flags & _FLAG_HAS_SOURCE:
                _write_varint(buffer, visit_number[source])
            _write_varint(buffer, len(label))
            previous = 0
            for fid in label:
                _write_varint(buffer, fid - previous)  # delta-encode sorted fids
                previous = fid
            if target_known:
                _write_varint(buffer, visit_number[target])
                current = target
            else:
                visit_number[target] = len(visit_number)
                current = target
                emit(target)
                # After returning from the recursion we are conceptually back at
                # ``target``'s last descendant; ``current`` already tracks it.

    emit(0)
    return bytes(buffer)


def deserialize(data: bytes) -> OutputNfa:
    """Reconstruct an output NFA from :func:`serialize` output."""
    if not data:
        raise NfaError("empty NFA serialization")
    root_final = bool(data[0])
    offset = 1

    transitions: list[list[tuple[tuple[int, ...], int]]] = [[]]
    finals: set[int] = {0} if root_final else set()
    current = 0  # the implied source: target of the previously read transition

    while offset < len(data):
        flags = data[offset]
        offset += 1
        if flags & _FLAG_HAS_SOURCE:
            source, offset = _read_varint(data, offset)
            if source >= len(transitions):
                raise NfaError(f"forward reference to unknown source state {source}")
        else:
            source = current
        label_length, offset = _read_varint(data, offset)
        if label_length == 0:
            raise NfaError("empty edge label in serialization")
        label = []
        previous = 0
        for _ in range(label_length):
            delta, offset = _read_varint(data, offset)
            previous += delta
            label.append(previous)
        if flags & _FLAG_HAS_TARGET:
            target, offset = _read_varint(data, offset)
            if target >= len(transitions):
                raise NfaError(f"forward reference to unknown target state {target}")
        else:
            target = len(transitions)
            transitions.append([])
            if flags & _FLAG_TARGET_FINAL:
                finals.add(target)
        transitions[source].append((tuple(label), target))
        current = target

    return OutputNfa(transitions, finals)


def serialized_size(nfa: OutputNfa) -> int:
    """Size in bytes of the canonical serialization (shuffle accounting)."""
    return len(serialize(nfa))
