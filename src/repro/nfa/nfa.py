"""Output NFAs: compressed sets of candidate subsequences (Sec. VI-A).

D-CAND sends, for every input sequence and every pivot item, the set of
candidate subsequences with that pivot.  The set is encoded as a
nondeterministic finite automaton whose edges are labelled with *output sets*
(sets of items): the NFA accepts exactly the candidate subsequences.

The construction mirrors the paper: accepting runs are inserted into a trie
(one edge per non-ε output set) and the trie is then minimized with a
Revuz-style bottom-up merge of states with identical right languages.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.errors import NfaError


class OutputNfa:
    """An acyclic NFA over output-set labels.

    * state ``0`` is the initial state;
    * ``transitions[s]`` is a list of ``(label, target)`` pairs where ``label``
      is a sorted tuple of fids;
    * a path from the initial state to a final state spells the candidate
      subsequences obtained by picking one item from each edge label.
    """

    def __init__(
        self,
        transitions: Sequence[Sequence[tuple[tuple[int, ...], int]]],
        final_states: Iterable[int],
    ) -> None:
        self.transitions: list[list[tuple[tuple[int, ...], int]]] = [
            sorted(((tuple(label), target) for label, target in edges))
            for edges in transitions
        ]
        self.final_states = frozenset(final_states)
        for edges in self.transitions:
            for label, target in edges:
                if not label:
                    raise NfaError("empty edge label")
                if not 0 <= target < len(self.transitions):
                    raise NfaError(f"edge target {target} out of range")
        for state in self.final_states:
            if not 0 <= state < len(self.transitions):
                raise NfaError(f"final state {state} out of range")

    # ----------------------------------------------------------------- basics
    @property
    def num_states(self) -> int:
        return len(self.transitions)

    @property
    def num_transitions(self) -> int:
        return sum(len(edges) for edges in self.transitions)

    def is_final(self, state: int) -> bool:
        return state in self.final_states

    def outgoing(self, state: int) -> list[tuple[tuple[int, ...], int]]:
        return self.transitions[state]

    # ------------------------------------------------------------- semantics
    def accepts(self, candidate: Sequence[int]) -> bool:
        """True iff ``candidate`` is one of the encoded candidate subsequences."""
        current = {0}
        for item in candidate:
            following: set[int] = set()
            for state in current:
                for label, target in self.transitions[state]:
                    if item in label:
                        following.add(target)
            if not following:
                return False
            current = following
        return any(self.is_final(state) for state in current)

    def candidates(self, limit: int = 1_000_000) -> set[tuple[int, ...]]:
        """Enumerate all encoded candidate subsequences (for tests/debugging)."""
        results: set[tuple[int, ...]] = set()

        def walk(state: int, prefix: tuple[int, ...]) -> None:
            if len(results) > limit:
                raise NfaError(f"more than {limit} candidates in NFA")
            if self.is_final(state) and prefix:
                results.add(prefix)
            for label, target in self.transitions[state]:
                for item in label:
                    walk(target, prefix + (item,))

        walk(0, ())
        return results

    def items(self) -> set[int]:
        """All items appearing on any edge label."""
        found: set[int] = set()
        for edges in self.transitions:
            for label, _target in edges:
                found.update(label)
        return found

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, OutputNfa):
            return NotImplemented
        return (
            self.transitions == other.transitions
            and self.final_states == other.final_states
        )

    def __hash__(self) -> int:
        return hash(
            (
                tuple(tuple(edges) for edges in self.transitions),
                self.final_states,
            )
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"OutputNfa(states={self.num_states}, transitions={self.num_transitions}, "
            f"finals={sorted(self.final_states)})"
        )


class TrieBuilder:
    """Builds a trie of runs (Fig. 7b) and minimizes it into an NFA (Fig. 7c)."""

    def __init__(self) -> None:
        self._children: list[dict[tuple[int, ...], int]] = [{}]
        self._final: set[int] = set()

    @property
    def num_states(self) -> int:
        return len(self._children)

    def add_run(self, output_sets: Iterable[tuple[int, ...]]) -> None:
        """Insert one accepting run, given as its non-ε output sets.

        ε output sets must already have been removed by the caller; each
        remaining output set becomes one trie edge.
        """
        state = 0
        added_edge = False
        for label in output_sets:
            label = tuple(sorted(label))
            if not label:
                raise NfaError("cannot insert an empty output set into a trie")
            nxt = self._children[state].get(label)
            if nxt is None:
                nxt = len(self._children)
                self._children.append({})
                self._children[state][label] = nxt
            state = nxt
            added_edge = True
        if added_edge:
            self._final.add(state)

    def trie(self) -> OutputNfa:
        """The (un-minimized) trie as an NFA."""
        transitions = [
            [(label, target) for label, target in sorted(children.items())]
            for children in self._children
        ]
        return OutputNfa(transitions, self._final)

    def minimized(self) -> OutputNfa:
        """Revuz-style minimization: merge states with identical right languages."""
        return minimize_acyclic(self.trie())


def minimize_acyclic(nfa: OutputNfa) -> OutputNfa:
    """Minimize an acyclic output NFA by bottom-up signature merging.

    Two states are merged when they agree on finality and have identical
    outgoing edges (after their targets have been canonicalized).  For tries
    this computes the minimal deterministic automaton of the encoded language
    in linear time; for general acyclic NFAs it is a sound (possibly
    non-minimal) reduction.
    """
    order = _topological_order(nfa)
    canonical: dict[int, int] = {}
    registry: dict[tuple, int] = {}
    signatures: dict[int, tuple] = {}
    for state in reversed(order):
        signature = (
            nfa.is_final(state),
            tuple(
                sorted((label, canonical[target]) for label, target in nfa.outgoing(state))
            ),
        )
        representative = registry.get(signature)
        if representative is None:
            registry[signature] = state
            representative = state
            signatures[state] = signature
        canonical[state] = representative

    kept = sorted({canonical[state] for state in order}, key=order.index)
    renumber = {state: index for index, state in enumerate(kept)}
    # Ensure the initial state keeps index 0.
    root = canonical[0]
    if renumber[root] != 0:
        other = kept[0]
        renumber[root], renumber[other] = 0, renumber[root]
    transitions: list[list[tuple[tuple[int, ...], int]]] = [[] for _ in kept]
    finals: set[int] = set()
    for state in kept:
        index = renumber[state]
        if nfa.is_final(state):
            finals.add(index)
        transitions[index] = [
            (label, renumber[canonical[target]]) for label, target in nfa.outgoing(state)
        ]
    return OutputNfa(transitions, finals)


def _topological_order(nfa: OutputNfa) -> list[int]:
    """States of an acyclic NFA in topological order starting from state 0."""
    order: list[int] = []
    seen: set[int] = set()
    in_progress: set[int] = set()

    def visit(state: int) -> None:
        if state in seen:
            return
        if state in in_progress:
            raise NfaError("output NFA contains a cycle")
        in_progress.add(state)
        for _label, target in nfa.outgoing(state):
            visit(target)
        in_progress.discard(state)
        seen.add(state)
        order.append(state)

    visit(0)
    return list(reversed(order))
