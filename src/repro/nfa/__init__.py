"""Output NFAs for candidate representation (Sec. VI)."""

from repro.nfa.nfa import OutputNfa, TrieBuilder, minimize_acyclic
from repro.nfa.serializer import deserialize, serialize, serialized_size

__all__ = [
    "OutputNfa",
    "TrieBuilder",
    "deserialize",
    "minimize_acyclic",
    "serialize",
    "serialized_size",
]
