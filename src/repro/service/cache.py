"""Bounded LRU cache of finished mining results.

The cache is the service layer's second amortization tier: the first tier
(attached stores, interned compiled kernels, warm grid memos) makes *cold*
queries cheap to start, this one makes *repeated* queries free.  Keys are
opaque hashable tuples built by the session layer — content-addressed, so a
corpus re-attached with new data simply stops matching its old entries (no
explicit invalidation protocol is needed; the bounded LRU ages them out).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable


@dataclass(frozen=True)
class CacheInfo:
    """A snapshot of one :class:`QueryCache`'s counters."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    entries: int = 0
    max_entries: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when idle)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": self.entries,
            "max_entries": self.max_entries,
            "hit_rate": self.hit_rate,
        }


#: Default bound on cached results per session/daemon.
DEFAULT_MAX_ENTRIES = 256


class QueryCache:
    """A thread-safe bounded LRU mapping query keys to finished results.

    ``max_entries=0`` disables caching (every lookup is a miss); the counters
    still track traffic so hit-rate reporting stays meaningful.
    """

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES) -> None:
        if max_entries < 0:
            raise ValueError(f"max_entries must be >= 0, got {max_entries}")
        self.max_entries = max_entries
        self._entries: OrderedDict[Hashable, object] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def get(self, key: Hashable):
        """The cached value for ``key`` (refreshing its recency), else None."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._hits += 1
                return self._entries[key]
            self._misses += 1
            return None

    def put(self, key: Hashable, value) -> None:
        """Store ``value``, evicting least-recently-used entries past the bound."""
        if self.max_entries == 0:
            return
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self._evictions += 1

    def clear(self) -> int:
        """Drop every entry (counters keep accumulating); returns the count."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            return dropped

    def info(self) -> CacheInfo:
        """A consistent snapshot of the counters."""
        with self._lock:
            return CacheInfo(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                entries=len(self._entries),
                max_entries=self.max_entries,
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        info = self.info()
        return (
            f"QueryCache(entries={info.entries}/{info.max_entries}, "
            f"hits={info.hits}, misses={info.misses})"
        )
