"""Mining as a service: a warm daemon with a bounded query cache.

Everything the library amortizes within one process run — attached
:class:`~repro.sequences.store.EncodedSequenceStore` corpora, interned
compiled kernels, compiled FSTs, per-worker grid memos — is kept warm *across*
queries by a long-lived server:

* :class:`~repro.service.cache.QueryCache` — a bounded LRU of finished
  :class:`~repro.core.results.MiningResult` objects, keyed by
  ``(corpus content hash, constraint, σ, algorithm, ClusterConfig
  fingerprint, options)``;
* :mod:`~repro.service.protocol` — the JSON-lines wire protocol shared by
  the server and the :func:`repro.api.connect` client, including the
  structured error payloads that re-raise daemon-side failures as the same
  :mod:`repro.errors` types on the client;
* :class:`~repro.service.server.MiningServer` — a threading socket server
  wrapping one shared :class:`~repro.api.LocalSession`, started from Python
  or via ``repro serve``.

The service implements exactly the :class:`repro.api.Session` facade, so a
query answered by the daemon is byte-identical to the same query answered by
the in-process library path.
"""

from repro.service.cache import CacheInfo, QueryCache
from repro.service.protocol import (
    DEFAULT_SERVICE_PORT,
    PROTOCOL_VERSION,
    decode_cache_info,
    decode_result,
    encode_result,
    error_payload,
    raise_error_payload,
)
from repro.service.server import MiningServer

__all__ = [
    "CacheInfo",
    "DEFAULT_SERVICE_PORT",
    "MiningServer",
    "PROTOCOL_VERSION",
    "QueryCache",
    "decode_cache_info",
    "decode_result",
    "encode_result",
    "error_payload",
    "raise_error_payload",
]
