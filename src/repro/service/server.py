"""The mining daemon: a threading socket server around one warm session.

:class:`MiningServer` listens on a TCP socket (loopback by default), speaks
the JSON-lines protocol of :mod:`repro.service.protocol`, and answers every
request from one shared :class:`repro.api.LocalSession` — so attached
corpora, compiled FSTs, interned kernels, and the LRU result cache stay warm
across requests *and* across client connections.  Start it programmatically
(``with MiningServer() as server: ...``) or from the CLI (``repro serve``);
connect with :func:`repro.api.connect`.
"""

from __future__ import annotations

import socketserver
import threading
import time

from repro.service import protocol


class _ClientHandler(socketserver.StreamRequestHandler):
    """One thread per client connection; requests are handled in order."""

    # Small request/response lines suffer Nagle + delayed-ACK stalls (~40ms
    # per round trip) — fatal for a cache that answers in microseconds.
    disable_nagle_algorithm = True

    def handle(self) -> None:
        server: MiningServer = self.server  # type: ignore[assignment]
        while True:
            try:
                request = protocol.read_message(self.rfile)
            except Exception:
                break  # torn or malformed stream: drop the connection
            if request is None:
                break
            try:
                response = server.dispatch(request)
            except Exception as error:  # noqa: BLE001 - every failure goes on the wire
                response = {"ok": False, "error": protocol.error_payload(error)}
            try:
                protocol.write_message(self.wfile, response)
            except Exception:
                break
            if request.get("op") == "shutdown":
                server.request_shutdown()
                break


class MiningServer(socketserver.ThreadingTCPServer):
    """A warm mining daemon sharing one session across all clients.

    Binds ``host:port`` (port 0 picks an ephemeral port; read
    :attr:`address` after construction).  :meth:`serve_background` runs the
    accept loop on a daemon thread, which is what both the tests and
    ``repro serve`` use.
    """

    allow_reuse_address = True
    daemon_threads = True

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        max_cache_entries: int | None = None,
        session=None,
    ) -> None:
        from repro.api.session import LocalSession

        super().__init__((host, port), _ClientHandler)
        self.session = (
            session if session is not None else LocalSession(max_cache_entries)
        )
        self._thread: threading.Thread | None = None
        self._shutdown_requested = threading.Event()
        self._serving = False

    # ------------------------------------------------------------- lifecycle
    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` pair."""
        return self.server_address[0], self.server_address[1]

    def serve_forever(self, poll_interval: float = 0.5) -> None:
        self._serving = True
        try:
            super().serve_forever(poll_interval)
        finally:
            self._serving = False

    def serve_background(self) -> tuple[str, int]:
        """Run the accept loop on a daemon thread; returns the address."""
        self._serving = True  # before the thread flips it: close() may race the start
        self._thread = threading.Thread(
            target=self.serve_forever, name="repro-mining-server", daemon=True
        )
        self._thread.start()
        return self.address

    def request_shutdown(self) -> None:
        """Stop the accept loop from a handler thread (non-blocking)."""
        if self._shutdown_requested.is_set():
            return
        self._shutdown_requested.set()
        threading.Thread(target=self.shutdown, daemon=True).start()

    def close(self) -> None:
        """Stop serving and release the socket and the session."""
        if self._serving:
            # shutdown() deadlocks unless the serve_forever loop is running.
            self.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self.server_close()
        self.session.close()

    def __enter__(self) -> "MiningServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -------------------------------------------------------------- dispatch
    def dispatch(self, request: dict) -> dict:
        """Answer one protocol request (exceptions become error payloads)."""
        operation = request.get("op")
        handler = getattr(self, f"_op_{str(operation).replace('-', '_')}", None)
        if operation is None or handler is None:
            from repro.errors import ServiceError

            raise ServiceError(f"unknown service operation {operation!r}")
        return {"ok": True, "result": handler(request)}

    # ------------------------------------------------------------ operations
    def _op_ping(self, request: dict) -> dict:
        # ``sleep_s`` exists so client-timeout handling is testable.
        sleep_s = float(request.get("sleep_s", 0) or 0)
        if sleep_s:
            time.sleep(sleep_s)
        return {"protocol": protocol.PROTOCOL_VERSION, "server": "repro"}

    def _op_attach_corpus(self, request: dict) -> dict:
        corpus = protocol.decode_corpus(request["corpus"])
        info = self.session.attach_corpus(request["name"], corpus)
        return info.as_dict()

    def _op_detach_corpus(self, request: dict) -> dict:
        self.session.detach_corpus(request["name"])
        return {}

    def _op_corpora(self, request: dict) -> dict:
        return {
            name: info.as_dict() for name, info in self.session.corpora().items()
        }

    def _query_arguments(self, request: dict) -> dict:
        return {
            "sigma": request.get("sigma"),
            "algorithm": request.get("algorithm", "dseq"),
            "config": protocol.decode_config(request.get("config")),
            **(request.get("options") or {}),
        }

    def _op_mine(self, request: dict) -> dict:
        result, cached = self.session.query(
            request["corpus"],
            constraint=protocol.decode_constraint(request["constraint"]),
            **self._query_arguments(request),
        )
        return {"result": protocol.encode_result(result), "cached": cached}

    def _op_sweep(self, request: dict) -> dict:
        arguments = self._query_arguments(request)
        answers = []
        for encoded in request["constraints"]:
            result, cached = self.session.query(
                request["corpus"],
                constraint=protocol.decode_constraint(encoded),
                **arguments,
            )
            answers.append({"result": protocol.encode_result(result), "cached": cached})
        return {"results": answers}

    def _op_top_k(self, request: dict) -> dict:
        arguments = self._query_arguments(request)
        arguments["sigma"] = arguments["sigma"] if arguments["sigma"] is not None else 1
        ranked = self.session.top_k(
            request["corpus"],
            constraint=protocol.decode_constraint(request["constraint"]),
            k=request["k"],
            **arguments,
        )
        return {
            "patterns": [[list(pattern), frequency] for pattern, frequency in ranked]
        }

    def _op_cache_info(self, request: dict) -> dict:
        return self.session.cache_info().as_dict()

    def _op_clear_cache(self, request: dict) -> dict:
        return {"dropped": self.session.clear_cache()}

    def _op_shutdown(self, request: dict) -> dict:
        return {"stopping": True}
