"""The JSON-lines wire protocol between ``repro serve`` and its clients.

One request per line, one response per line, UTF-8 JSON with no embedded
newlines.  Every payload here round-trips *exactly*: dictionaries ship their
items verbatim (gid, fid, document frequency, hierarchy links — never
re-derived, so fids survive the trip), results ship their patterns in
insertion order with full job metrics, and server-side failures travel as
structured error payloads that :func:`raise_error_payload` re-raises on the
client as the same :mod:`repro.errors` types.  That exactness is what makes
a daemon-served query byte-identical to the in-process library path.
"""

from __future__ import annotations

import dataclasses
import json

from repro import errors as _errors
from repro.core.results import MiningResult
from repro.datasets.constraints import Constraint
from repro.dictionary import Dictionary
from repro.dictionary.dictionary import Item
from repro.errors import ServiceError
from repro.mapreduce import ClusterConfig
from repro.mapreduce.metrics import JobMetrics
from repro.patex import PatEx
from repro.sequences import SequenceDatabase
from repro.service.cache import CacheInfo

#: Bumped whenever a payload shape changes incompatibly.
PROTOCOL_VERSION = 1

#: The port ``repro serve`` binds — and :func:`repro.api.connect` dials — by
#: default.  Shared here so the two sides cannot drift apart (the client used
#: to default to port 0, which no listening daemon can ever occupy).
DEFAULT_SERVICE_PORT = 9043


# ----------------------------------------------------------------- framing
def write_message(wfile, payload: dict) -> None:
    """Write one protocol message (a JSON object on its own line)."""
    wfile.write(json.dumps(payload, separators=(",", ":")).encode("utf-8"))
    wfile.write(b"\n")
    wfile.flush()


def read_message(rfile) -> dict | None:
    """Read one protocol message; ``None`` means the peer closed the stream."""
    line = rfile.readline()
    if not line:
        return None
    try:
        payload = json.loads(line)
    except ValueError as error:
        raise ServiceError(f"malformed protocol message: {error}") from error
    if not isinstance(payload, dict):
        raise ServiceError(
            f"protocol messages must be JSON objects, got {type(payload).__name__}"
        )
    return payload


# -------------------------------------------------------------- dictionaries
def encode_dictionary(dictionary: Dictionary) -> dict:
    """Ship a dictionary's items verbatim.

    The file reader (:func:`~repro.dictionary.read_dictionary`) reassigns
    fids by frequency rank, so it cannot be used for transport: patterns are
    fid tuples, and a fid remap would silently re-label every result.  The
    wire format therefore carries the exact items.
    """
    return {
        "items": [
            [
                item.gid,
                item.fid,
                item.document_frequency,
                sorted(item.parent_fids),
                sorted(item.children_fids),
            ]
            for item in sorted(dictionary, key=lambda item: item.fid)
        ]
    }


def decode_dictionary(payload: dict) -> Dictionary:
    return Dictionary(
        Item(
            gid=gid,
            fid=fid,
            document_frequency=document_frequency,
            parent_fids=frozenset(parents),
            children_fids=frozenset(children),
        )
        for gid, fid, document_frequency, parents, children in payload["items"]
    )


# -------------------------------------------------------------------- corpora
def encode_corpus(corpus) -> dict:
    """A corpus as ``{"dictionary": ..., "sequences": [[fid, ...], ...]}``."""
    return {
        "dictionary": encode_dictionary(corpus.dictionary),
        "sequences": [list(sequence) for sequence in corpus.database],
    }


def decode_corpus(payload: dict):
    from repro.api.corpus import Corpus

    return Corpus(
        SequenceDatabase(payload["sequences"]),
        decode_dictionary(payload["dictionary"]),
    )


# -------------------------------------------------------------------- configs
_CONFIG_FIELDS = tuple(field.name for field in dataclasses.fields(ClusterConfig))


def encode_config(config: ClusterConfig | None) -> dict | None:
    """A config as its field dict (names only — live objects cannot travel)."""
    if config is None:
        return None
    if not isinstance(config.backend, str):
        raise ServiceError(
            "cannot send a live Cluster instance to the service; "
            "pass a backend name in ClusterConfig(backend=...)"
        )
    if not isinstance(config.codec, str):
        raise ServiceError(
            "cannot send a live Codec instance to the service; "
            "pass a codec name in ClusterConfig(codec=...)"
        )
    return {name: getattr(config, name) for name in _CONFIG_FIELDS}


def decode_config(payload: dict | None) -> ClusterConfig | None:
    if payload is None:
        return None
    unknown = set(payload) - set(_CONFIG_FIELDS)
    if unknown:
        raise ServiceError(f"unknown ClusterConfig fields on the wire: {sorted(unknown)}")
    return ClusterConfig(**payload)


# ---------------------------------------------------------------- constraints
def encode_constraint(constraint) -> dict:
    """A constraint in any of the public API's accepted shapes."""
    if isinstance(constraint, Constraint):
        return {
            "kind": "catalogue",
            "key": constraint.key,
            "expression": constraint.expression,
            "sigma": constraint.sigma,
            "dataset": constraint.dataset,
            "description": constraint.description,
            "specialized": constraint.specialized,
        }
    if isinstance(constraint, PatEx):
        return {"kind": "patex", "expression": constraint.expression}
    if isinstance(constraint, str):
        return {"kind": "patex", "expression": constraint}
    if isinstance(constraint, dict):
        return {"kind": "gap", "parameters": dict(constraint)}
    raise ServiceError(
        f"cannot encode constraint of type {type(constraint).__name__} for the wire"
    )


def decode_constraint(payload: dict):
    kind = payload.get("kind")
    if kind == "patex":
        return payload["expression"]
    if kind == "gap":
        return dict(payload["parameters"])
    if kind == "catalogue":
        return Constraint(
            key=payload["key"],
            expression=payload["expression"],
            sigma=payload["sigma"],
            dataset=payload["dataset"],
            description=payload["description"],
            specialized=payload["specialized"],
        )
    raise ServiceError(f"unknown constraint kind on the wire: {kind!r}")


# -------------------------------------------------------------------- results
_METRIC_FIELDS = tuple(field.name for field in dataclasses.fields(JobMetrics))


def encode_result(result: MiningResult) -> dict:
    """A result with its patterns in insertion order and full job metrics.

    Ordered ``[pattern, frequency]`` pairs (not a JSON object) keep the
    pattern iteration order intact, so a decoded result compares — and
    iterates — byte-identically to the miner's original.
    """
    return {
        "algorithm": result.algorithm,
        "patterns": [
            [list(pattern), frequency] for pattern, frequency in result.patterns().items()
        ],
        "metrics": {name: getattr(result.metrics, name) for name in _METRIC_FIELDS},
    }


def decode_result(payload: dict) -> MiningResult:
    metrics = JobMetrics(**{name: payload["metrics"][name] for name in _METRIC_FIELDS})
    return MiningResult(
        {tuple(pattern): frequency for pattern, frequency in payload["patterns"]},
        metrics=metrics,
        algorithm=payload["algorithm"],
    )


# ---------------------------------------------------------------- cache info
_CACHE_INFO_FIELDS = tuple(field.name for field in dataclasses.fields(CacheInfo))


def decode_cache_info(payload: dict) -> CacheInfo:
    """Rebuild a :class:`~repro.service.cache.CacheInfo` from its wire form.

    The one tolerant decoder for both sides: unknown keys are ignored (the
    server's ``as_dict`` already ships the derived ``hit_rate``, and a newer
    server may ship counters an older client does not know), and missing
    keys fall back to the dataclass defaults — so protocol additions never
    break old clients.
    """
    return CacheInfo(
        **{name: payload[name] for name in _CACHE_INFO_FIELDS if name in payload}
    )


# --------------------------------------------------------------------- errors
#: Exception types the client re-raises by name.  Everything in
#: :mod:`repro.errors` plus the builtins the API validates with.
_ERROR_REGISTRY = {
    name: value
    for name, value in vars(_errors).items()
    if isinstance(value, type) and issubclass(value, Exception)
}
_ERROR_REGISTRY.update(
    {cls.__name__: cls for cls in (ValueError, TypeError, KeyError, RuntimeError)}
)


def error_payload(error: Exception) -> dict:
    """Flatten a server-side exception into a wire payload."""
    attributes = {
        key: value
        for key, value in vars(error).items()
        if not key.startswith("_") and isinstance(value, (str, int, float, bool))
    }
    return {
        "type": type(error).__name__,
        "message": str(error),
        "attributes": attributes,
    }


def raise_error_payload(payload: dict) -> None:
    """Re-raise a wire error payload as the matching exception type.

    Known types are reconstructed without running their custom constructors
    (the payload message is already fully formatted); simple public
    attributes (``name``, ``operation``, ...) are restored.  Unknown types
    degrade to :class:`~repro.errors.ServiceError` with the original type
    name in the message.
    """
    name = payload.get("type", "ServiceError")
    message = payload.get("message", "unknown service error")
    cls = _ERROR_REGISTRY.get(name)
    if cls is None:
        raise ServiceError(f"{name}: {message}")
    error = cls.__new__(cls)
    Exception.__init__(error, message)
    for key, value in (payload.get("attributes") or {}).items():
        try:
            setattr(error, key, value)
        except AttributeError:  # pragma: no cover - frozen/slotted exceptions
            pass
    raise error
