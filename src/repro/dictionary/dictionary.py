"""Frozen item dictionary: fid encoding, hierarchy closures, and frequencies.

A :class:`Dictionary` is the central vocabulary object of the library.  It maps
every item to

* a stable string identifier (*gid*), and
* an integer identifier (*fid*) assigned by **decreasing document frequency**
  (fid ``1`` is the most frequent item, ties broken by gid).

The fid order is exactly the total order ``<`` used for item-based partitioning
in the paper: the *pivot item* of a subsequence is its item with the largest
fid, i.e. its least frequent item.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field

from repro.dictionary.hierarchy import Hierarchy
from repro.dictionary.intervals import DescendantIndex
from repro.errors import DictionaryError, UnknownItemError

#: fid value used to represent the empty output ε.  It is smaller than every
#: real fid, which makes the pivot-merge semantics (``ε < w`` for all items w)
#: fall out of plain integer comparison.
EPSILON_FID = 0


@dataclass(frozen=True)
class Item:
    """A single dictionary entry."""

    gid: str
    fid: int
    document_frequency: int
    parent_fids: frozenset[int] = field(default_factory=frozenset)
    children_fids: frozenset[int] = field(default_factory=frozenset)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Item(gid={self.gid!r}, fid={self.fid}, df={self.document_frequency})"


class Dictionary:
    """Immutable item dictionary with hierarchy closures and frequencies.

    Instances are normally produced by
    :class:`~repro.dictionary.builder.DictionaryBuilder`; the constructor is
    public to support tests and hand-built toy examples (e.g. the paper's
    running example in Fig. 2).
    """

    def __init__(self, items: Iterable[Item]) -> None:
        self._by_fid: dict[int, Item] = {}
        self._by_gid: dict[str, Item] = {}
        for item in items:
            if item.fid in self._by_fid:
                raise DictionaryError(f"duplicate fid {item.fid}")
            if item.gid in self._by_gid:
                raise DictionaryError(f"duplicate gid {item.gid!r}")
            if item.fid <= EPSILON_FID:
                raise DictionaryError(f"fids must be positive, got {item.fid}")
            self._by_fid[item.fid] = item
            self._by_gid[item.gid] = item
        self._validate_links()
        self._ancestor_cache: dict[int, frozenset[int]] = {}
        self._descendant_cache: dict[int, frozenset[int]] = {}
        self._descendant_index: DescendantIndex | None = None
        self._content_fingerprint: bytes | None = None

    # ------------------------------------------------------------ construction
    @classmethod
    def from_hierarchy(
        cls, hierarchy: Hierarchy, frequencies: dict[str, int]
    ) -> "Dictionary":
        """Build a dictionary from a gid hierarchy and document frequencies.

        Items missing from ``frequencies`` get frequency ``0``.  fids are
        assigned by decreasing frequency; ties are broken by gid to keep the
        assignment deterministic.
        """
        gids = sorted(hierarchy.items(), key=lambda g: (-frequencies.get(g, 0), g))
        fid_of = {gid: fid for fid, gid in enumerate(gids, start=1)}
        items = []
        for gid in gids:
            items.append(
                Item(
                    gid=gid,
                    fid=fid_of[gid],
                    document_frequency=frequencies.get(gid, 0),
                    parent_fids=frozenset(fid_of[p] for p in hierarchy.parents(gid)),
                    children_fids=frozenset(fid_of[c] for c in hierarchy.children(gid)),
                )
            )
        return cls(items)

    # ----------------------------------------------------------------- lookups
    def __len__(self) -> int:
        return len(self._by_fid)

    def __contains__(self, key: object) -> bool:
        if isinstance(key, int):
            return key in self._by_fid
        if isinstance(key, str):
            return key in self._by_gid
        return False

    def __iter__(self) -> Iterator[Item]:
        return iter(sorted(self._by_fid.values(), key=lambda item: item.fid))

    def fids(self) -> list[int]:
        """All fids in increasing order (most frequent first)."""
        return sorted(self._by_fid)

    def item_by_fid(self, fid: int) -> Item:
        try:
            return self._by_fid[fid]
        except KeyError:
            raise UnknownItemError(fid) from None

    def item_by_gid(self, gid: str) -> Item:
        try:
            return self._by_gid[gid]
        except KeyError:
            raise UnknownItemError(gid) from None

    def fid_of(self, gid: str) -> int:
        """The fid of item ``gid``."""
        return self.item_by_gid(gid).fid

    def gid_of(self, fid: int) -> str:
        """The gid of item ``fid``."""
        return self.item_by_fid(fid).gid

    def frequency(self, fid: int) -> int:
        """Document frequency ``f(w, D)`` of item ``fid``."""
        return self.item_by_fid(fid).document_frequency

    def is_frequent(self, fid: int, sigma: int) -> bool:
        """True if the item's document frequency is at least ``sigma``."""
        return self.frequency(fid) >= sigma

    def largest_frequent_fid(self, sigma: int) -> int:
        """The largest fid whose item is still frequent (0 if none).

        Because fids are ordered by decreasing frequency, all fids up to the
        returned value (inclusive) are frequent and all larger fids are not.
        """
        largest = 0
        for fid in self.fids():
            if self.frequency(fid) >= sigma:
                largest = fid
            else:
                break
        return largest

    # --------------------------------------------------------------- hierarchy
    def parents(self, fid: int) -> frozenset[int]:
        """Direct generalizations of ``fid``."""
        return self.item_by_fid(fid).parent_fids

    def children(self, fid: int) -> frozenset[int]:
        """Direct specializations of ``fid``."""
        return self.item_by_fid(fid).children_fids

    def ancestors(self, fid: int) -> frozenset[int]:
        """All ancestors of ``fid`` including itself (``anc(w)`` in the paper)."""
        cached = self._ancestor_cache.get(fid)
        if cached is None:
            cached = frozenset(self._closure(fid, lambda f: self.parents(f)))
            self._ancestor_cache[fid] = cached
        return cached

    def descendants(self, fid: int) -> frozenset[int]:
        """All descendants of ``fid`` including itself (``desc(w)`` in the paper)."""
        cached = self._descendant_cache.get(fid)
        if cached is None:
            cached = frozenset(self._closure(fid, lambda f: self.children(f)))
            self._descendant_cache[fid] = cached
        return cached

    def generalizes_to(self, child_fid: int, ancestor_fid: int) -> bool:
        """True if ``child_fid ⇒* ancestor_fid`` (reflexive)."""
        return ancestor_fid in self.ancestors(child_fid)

    def roots(self) -> frozenset[int]:
        """fids of items without parents."""
        return frozenset(item.fid for item in self._by_fid.values() if not item.parent_fids)

    def root_ancestors(self, fid: int) -> frozenset[int]:
        """The root (parent-less) ancestors of ``fid``; ``{fid}`` if it is a root."""
        return frozenset(a for a in self.ancestors(fid) if not self.parents(a))

    def is_forest(self) -> bool:
        """True if every item has at most one parent."""
        return all(len(item.parent_fids) <= 1 for item in self._by_fid.values())

    def descendant_index(self) -> DescendantIndex:
        """The interval-encoded descendant index of this dictionary (cached).

        Built lazily by the compiled mining kernel; see
        :mod:`repro.dictionary.intervals` for the encoding.
        """
        if self._descendant_index is None:
            self._descendant_index = DescendantIndex(self)
        return self._descendant_index

    def content_fingerprint(self) -> bytes:
        """A digest of the hierarchy and frequencies (cached).

        Two dictionaries with equal fingerprints behave identically for every
        hierarchy and frequency query, which is what lets compiled kernels be
        interned per worker process across task unpickles.
        """
        if self._content_fingerprint is None:
            import hashlib
            import pickle

            payload = tuple(
                (item.fid, item.document_frequency, tuple(sorted(item.parent_fids)))
                for item in self
            )
            self._content_fingerprint = hashlib.sha1(
                pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
            ).digest()
        return self._content_fingerprint

    # ------------------------------------------------------------ conveniences
    def encode(self, gids: Iterable[str]) -> tuple[int, ...]:
        """Translate a sequence of gids into a tuple of fids."""
        return tuple(self.fid_of(g) for g in gids)

    def decode(self, fids: Iterable[int]) -> tuple[str, ...]:
        """Translate a sequence of fids into a tuple of gids."""
        return tuple(self.gid_of(f) for f in fids)

    def flist(self, sigma: int = 1) -> list[tuple[str, int]]:
        """The f-list: frequent items with their frequency, most frequent first."""
        return [
            (item.gid, item.document_frequency)
            for item in self
            if item.document_frequency >= sigma
        ]

    def hierarchy_stats(self) -> dict[str, float]:
        """Hierarchy characteristics reported in Table II of the paper."""
        counts = [len(self.ancestors(fid)) for fid in self.fids()]
        if not counts:
            return {"items": 0, "max_ancestors": 0, "mean_ancestors": 0.0}
        return {
            "items": len(counts),
            "max_ancestors": max(counts),
            "mean_ancestors": sum(counts) / len(counts),
        }

    # ----------------------------------------------------------------- private
    def __getstate__(self):
        # The descendant index is derived state: compiled kernels ship their
        # own interval matchers, so shipping the index with every pickled
        # dictionary would only duplicate bytes on the wire.
        state = dict(self.__dict__)
        state["_descendant_index"] = None
        return state

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)

    def _validate_links(self) -> None:
        for item in self._by_fid.values():
            for linked in item.parent_fids | item.children_fids:
                if linked not in self._by_fid:
                    raise DictionaryError(
                        f"item {item.gid!r} links to unknown fid {linked}"
                    )

    @staticmethod
    def _closure(start: int, step) -> set[int]:
        seen = {start}
        stack = [start]
        while stack:
            node = stack.pop()
            for nxt in step(node):
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return seen
