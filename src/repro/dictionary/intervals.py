"""Interval-encoded descendant sets for O(log k) hierarchy matching.

:meth:`~repro.dictionary.dictionary.Dictionary.generalizes_to` — the inner
predicate of every item-label FST transition — walks the cached ancestor
closure of the input item.  The compiled mining kernel replaces that per-call
set membership with a *positional* test: every dictionary item is assigned a
DFS position over a spanning forest of the hierarchy, and the descendant set
``desc(w)`` of each item is frozen into a sorted list of ``[start, end]``
position runs.  ``v ∈ desc(w)`` then becomes a bisect probe into two flat
``array`` columns — O(log k) in the number of runs, with no per-item closure
materialization on the hot path.

For forest-shaped hierarchies every descendant set is a single contiguous DFS
interval (the classic Euler-tour encoding).  Items reachable through multiple
parents (a hierarchy DAG, e.g. a product in two categories) fragment the
encoding; their descendant sets coalesce into several runs, which the same
bisect probe handles without a special case.  Positions are dense small
integers regardless of fid magnitude, so fids ≥ 2^63 cost nothing extra.
"""

from __future__ import annotations

from array import array
from bisect import bisect_right
from collections.abc import Iterable


class IntervalSet:
    """An immutable set of integers stored as sorted, coalesced runs.

    Membership is a binary search over the run starts: find the last run
    starting at or before the probe, then check the probe against that run's
    end.  Runs are stored in two parallel signed 64-bit ``array`` columns,
    which pickle as flat bytes.
    """

    __slots__ = ("_starts", "_ends", "_size")

    def __init__(self, starts: array, ends: array, size: int) -> None:
        self._starts = starts
        self._ends = ends
        self._size = size

    @classmethod
    def from_positions(cls, positions: Iterable[int]) -> "IntervalSet":
        """Build an interval set from arbitrary integer positions."""
        ordered = sorted(set(positions))
        starts = array("q")
        ends = array("q")
        for position in ordered:
            if ends and position == ends[-1] + 1:
                ends[-1] = position
            else:
                starts.append(position)
                ends.append(position)
        return cls(starts, ends, len(ordered))

    def __contains__(self, position: int) -> bool:
        index = bisect_right(self._starts, position) - 1
        return index >= 0 and position <= self._ends[index]

    def __len__(self) -> int:
        return self._size

    @property
    def runs(self) -> tuple[tuple[int, int], ...]:
        """The coalesced ``(start, end)`` runs (inclusive), for inspection."""
        return tuple(zip(self._starts, self._ends))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalSet):
            return NotImplemented
        return self._starts == other._starts and self._ends == other._ends

    def __hash__(self) -> int:
        return hash((bytes(self._starts), bytes(self._ends)))

    def __getstate__(self):
        return (self._starts, self._ends, self._size)

    def __setstate__(self, state) -> None:
        self._starts, self._ends, self._size = state

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"IntervalSet(runs={self.runs!r})"


class DescendantIndex:
    """DFS positions plus per-item interval-encoded descendant sets.

    The index is built once per dictionary (and cached there): a deterministic
    DFS over the spanning forest rooted at the parent-less items assigns every
    fid a dense position; :meth:`descendant_intervals` freezes ``desc(w)`` of
    any item into an :class:`IntervalSet` over those positions on first use.
    """

    def __init__(self, dictionary) -> None:
        self._dictionary = dictionary
        self._position_of: dict[int, int] = {}
        self._intervals: dict[int, IntervalSet] = {}
        self._assign_positions()

    def _assign_positions(self) -> None:
        dictionary = self._dictionary
        position_of = self._position_of
        # Deterministic spanning-forest DFS: roots and children in fid order;
        # an item reachable through several parents is positioned at its
        # first visit, which keeps single-parent subtrees contiguous.
        stack = sorted(dictionary.roots(), reverse=True)
        while stack:
            fid = stack.pop()
            if fid in position_of:
                continue
            position_of[fid] = len(position_of)
            stack.extend(sorted(dictionary.children(fid), reverse=True))
        # Items on parent cycles (unreachable from any root) still need
        # positions so that wildcard-free matchers stay total.
        for fid in dictionary.fids():
            if fid not in position_of:
                position_of[fid] = len(position_of)

    def position_of(self, fid: int) -> int | None:
        """The DFS position of ``fid`` (None for unknown items)."""
        return self._position_of.get(fid)

    @property
    def positions(self) -> dict[int, int]:
        """The full fid → position mapping (read-only use)."""
        return self._position_of

    def descendant_intervals(self, fid: int) -> IntervalSet:
        """The interval-encoded descendant set ``desc(fid)`` (cached)."""
        cached = self._intervals.get(fid)
        if cached is None:
            position_of = self._position_of
            cached = IntervalSet.from_positions(
                position_of[d] for d in self._dictionary.descendants(fid)
            )
            self._intervals[fid] = cached
        return cached

    def is_descendant(self, item_fid: int, ancestor_fid: int) -> bool:
        """Interval probe for ``item_fid ∈ desc(ancestor_fid)`` (reflexive).

        Unknown items are simply not descendants (the compiled kernel treats
        out-of-vocabulary fids as matching nothing rather than raising).
        """
        position = self._position_of.get(item_fid)
        if position is None:
            return False
        return position in self.descendant_intervals(ancestor_fid)
