"""Dictionary construction from raw gid sequences and a hierarchy.

The builder performs the "preprocessing" step of the paper: it scans the raw
sequence database once, computes the document frequency ``f(w, D)`` of every
item (counting a sequence for an item if the sequence contains the item *or any
of its descendants*), and assigns fids by decreasing frequency.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Sequence

from repro.dictionary.dictionary import Dictionary
from repro.dictionary.hierarchy import Hierarchy


class DictionaryBuilder:
    """Incrementally build a :class:`~repro.dictionary.dictionary.Dictionary`.

    Typical usage::

        builder = DictionaryBuilder(hierarchy)
        for sequence in raw_sequences:          # sequences of gid strings
            builder.add_sequence(sequence)
        dictionary = builder.build()
    """

    def __init__(self, hierarchy: Hierarchy | None = None) -> None:
        self._hierarchy = hierarchy.copy() if hierarchy is not None else Hierarchy()
        self._document_frequency: Counter[str] = Counter()
        self._sequence_count = 0

    @property
    def sequence_count(self) -> int:
        """Number of sequences added so far."""
        return self._sequence_count

    def add_item(self, gid: str) -> None:
        """Register an item that may not occur in any sequence."""
        self._hierarchy.add_item(gid)

    def add_generalization(self, child: str, parent: str) -> None:
        """Register a generalization edge ``child => parent``."""
        self._hierarchy.add_edge(child, parent)

    def add_sequence(self, gids: Sequence[str]) -> None:
        """Count one input sequence.

        Every distinct ancestor (including the item itself) of any item in the
        sequence gets its document frequency increased by one, matching the
        Fig. 2c semantics (``f(A, Dex) = 4`` because four sequences contain a
        descendant of ``A``).
        """
        self._sequence_count += 1
        seen: set[str] = set()
        for gid in gids:
            if gid not in self._hierarchy:
                self._hierarchy.add_item(gid)
            seen.update(self._hierarchy.ancestors(gid))
        self._document_frequency.update(seen)

    def add_sequences(self, sequences: Iterable[Sequence[str]]) -> None:
        """Count many input sequences."""
        for sequence in sequences:
            self.add_sequence(sequence)

    def build(self) -> Dictionary:
        """Freeze the accumulated counts into a :class:`Dictionary`."""
        return Dictionary.from_hierarchy(self._hierarchy, dict(self._document_frequency))


def build_dictionary(
    sequences: Iterable[Sequence[str]], hierarchy: Hierarchy | None = None
) -> Dictionary:
    """One-shot convenience wrapper around :class:`DictionaryBuilder`."""
    builder = DictionaryBuilder(hierarchy)
    builder.add_sequences(sequences)
    return builder.build()
