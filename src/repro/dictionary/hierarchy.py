"""Mutable item hierarchy (a DAG over item gids).

The hierarchy expresses how items generalize: an edge ``child -> parent`` means
that ``child`` directly generalizes to ``parent`` (``child => parent`` in the
paper).  A :class:`Hierarchy` is the raw, string-keyed structure used while
building a :class:`~repro.dictionary.dictionary.Dictionary`; the dictionary then
freezes it into integer fids ordered by document frequency.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.errors import DictionaryError, UnknownItemError


class Hierarchy:
    """A directed acyclic graph over item gids.

    Items are identified by arbitrary strings ("gids").  Edges point from an
    item to its direct generalization (parent).  Items may have zero, one, or
    multiple parents (the AMZN product hierarchy in the paper is a DAG, the
    AMZN-F variant is a forest).
    """

    def __init__(self) -> None:
        self._parents: dict[str, set[str]] = {}
        self._children: dict[str, set[str]] = {}

    # ------------------------------------------------------------------ basic
    def add_item(self, gid: str) -> None:
        """Register an item; adding an existing item is a no-op."""
        if not isinstance(gid, str) or not gid:
            raise DictionaryError(f"item gid must be a non-empty string, got {gid!r}")
        self._parents.setdefault(gid, set())
        self._children.setdefault(gid, set())

    def add_edge(self, child: str, parent: str) -> None:
        """Add a generalization edge ``child => parent``.

        Both endpoints are registered if they are new.  Self-loops and edges
        that would create a cycle raise :class:`DictionaryError`.
        """
        if child == parent:
            raise DictionaryError(f"self-generalization is not allowed: {child!r}")
        self.add_item(child)
        self.add_item(parent)
        if child in self.ancestors(parent):
            raise DictionaryError(
                f"adding edge {child!r} => {parent!r} would create a cycle"
            )
        self._parents[child].add(parent)
        self._children[parent].add(child)

    def __contains__(self, gid: str) -> bool:
        return gid in self._parents

    def __len__(self) -> int:
        return len(self._parents)

    def __iter__(self) -> Iterator[str]:
        return iter(self._parents)

    def items(self) -> Iterator[str]:
        """Iterate over all registered gids."""
        return iter(self._parents)

    # --------------------------------------------------------------- structure
    def parents(self, gid: str) -> frozenset[str]:
        """Direct generalizations of ``gid``."""
        self._check(gid)
        return frozenset(self._parents[gid])

    def children(self, gid: str) -> frozenset[str]:
        """Direct specializations of ``gid``."""
        self._check(gid)
        return frozenset(self._children[gid])

    def ancestors(self, gid: str) -> frozenset[str]:
        """All ancestors of ``gid`` including ``gid`` itself (reflexive closure)."""
        self._check(gid)
        return frozenset(self._closure(gid, self._parents))

    def descendants(self, gid: str) -> frozenset[str]:
        """All descendants of ``gid`` including ``gid`` itself (reflexive closure)."""
        self._check(gid)
        return frozenset(self._closure(gid, self._children))

    def roots(self) -> frozenset[str]:
        """Items with no parent."""
        return frozenset(g for g, ps in self._parents.items() if not ps)

    def leaves(self) -> frozenset[str]:
        """Items with no children."""
        return frozenset(g for g, cs in self._children.items() if not cs)

    def is_forest(self) -> bool:
        """Return True if every item has at most one parent."""
        return all(len(ps) <= 1 for ps in self._parents.values())

    # ----------------------------------------------------------------- helpers
    def update(self, items: Iterable[str] = (), edges: Iterable[tuple[str, str]] = ()) -> None:
        """Bulk-add items and ``(child, parent)`` edges."""
        for gid in items:
            self.add_item(gid)
        for child, parent in edges:
            self.add_edge(child, parent)

    def copy(self) -> "Hierarchy":
        """Return a deep copy of this hierarchy."""
        clone = Hierarchy()
        clone._parents = {g: set(ps) for g, ps in self._parents.items()}
        clone._children = {g: set(cs) for g, cs in self._children.items()}
        return clone

    def _check(self, gid: str) -> None:
        if gid not in self._parents:
            raise UnknownItemError(gid)

    @staticmethod
    def _closure(start: str, adjacency: dict[str, set[str]]) -> set[str]:
        seen = {start}
        stack = [start]
        while stack:
            node = stack.pop()
            for nxt in adjacency[node]:
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return seen
