"""Item dictionaries and hierarchies (Sec. II of the paper)."""

from repro.dictionary.builder import DictionaryBuilder, build_dictionary
from repro.dictionary.dictionary import EPSILON_FID, Dictionary, Item
from repro.dictionary.hierarchy import Hierarchy
from repro.dictionary.intervals import DescendantIndex, IntervalSet

__all__ = [
    "DescendantIndex",
    "Dictionary",
    "DictionaryBuilder",
    "EPSILON_FID",
    "Hierarchy",
    "IntervalSet",
    "Item",
    "build_dictionary",
]
