"""Item dictionaries and hierarchies (Sec. II of the paper)."""

from repro.dictionary.builder import DictionaryBuilder, build_dictionary
from repro.dictionary.dictionary import EPSILON_FID, Dictionary, Item
from repro.dictionary.hierarchy import Hierarchy

__all__ = [
    "Dictionary",
    "DictionaryBuilder",
    "EPSILON_FID",
    "Hierarchy",
    "Item",
    "build_dictionary",
]
