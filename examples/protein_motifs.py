"""Protein motif mining: flexible constraints in computational biology.

The paper's introduction lists "mining of protein sequences that exhibit a
given motif" as one of the applications that need flexible subsequence
constraints.  This example generates synthetic protein-like sequences with an
implanted zinc-finger-style motif (C-x(2)-C-x(3)-[hydrophobic]-x(2)-H), mines
them with D-SEQ and D-CAND, and shows how the hierarchy over amino-acid
classes lets the miner report both concrete and generalized motif instances.

Run with:  python examples/protein_motifs.py [num_sequences]
"""

from __future__ import annotations

import sys

from repro import mine
from repro.datasets import protein_like, protein_motif_constraint
from repro.experiments import bar_chart


def main(num_sequences: int = 500) -> None:
    dataset = protein_like(num_sequences, motif_fraction=0.35, seed=29)
    dictionary, database = dataset.preprocess()
    stats = database.statistics()
    print(
        f"Generated {stats.sequence_count} protein-like sequences "
        f"(mean length {stats.mean_length:.1f}, {stats.unique_items} distinct residues)."
    )

    constraint = protein_motif_constraint(sigma=max(5, num_sequences // 50))
    print(f"\nMotif constraint: {constraint.expression}")
    print(f"Minimum support:  {constraint.sigma}\n")

    results = {}
    for algorithm in ("dseq", "dcand"):
        result = mine(
            database, dictionary, constraint.expression, sigma=constraint.sigma,
            algorithm=algorithm,
        )
        results[algorithm] = result
        print(
            f"{algorithm:>6}: {len(result)} motif patterns, "
            f"map {result.metrics.map_seconds:.2f}s, mine {result.metrics.reduce_seconds:.2f}s, "
            f"shuffle {result.metrics.shuffle_bytes:,} bytes"
        )
    assert results["dseq"].patterns() == results["dcand"].patterns()

    decoded = results["dcand"].decoded(dictionary)
    generalized = {p: f for p, f in decoded.items() if p[2] == "Hydrophobic"}
    concrete = {p: f for p, f in decoded.items() if p[2] != "Hydrophobic"}

    print("\nMost frequent motif instances (class-generalized):")
    top_generalized = sorted(generalized.items(), key=lambda kv: -kv[1])[:5]
    print(
        bar_chart(
            [" ".join(pattern) for pattern, _ in top_generalized],
            [frequency for _, frequency in top_generalized],
            unit="sequences",
        )
    )

    print("\nMost frequent concrete motif instances:")
    top_concrete = sorted(concrete.items(), key=lambda kv: -kv[1])[:5]
    print(
        bar_chart(
            [" ".join(pattern) for pattern, _ in top_concrete],
            [frequency for _, frequency in top_concrete],
            unit="sequences",
        )
    )

    print(
        "\nThe generalized pattern subsumes its concrete instances, so its support "
        "is at least as high — this is what hierarchy constraints buy over plain "
        "regular-expression filters."
    )


if __name__ == "__main__":
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 500
    main(size)
