"""Scalability example: how D-SEQ and D-CAND scale with data and workers.

Reproduces a small version of Fig. 11 of the paper on the AMZN-F-like dataset
with the traditional constraint T3(σ, 1, 5): run time versus dataset size
(data scalability) and versus the number of simulated workers (strong
scalability).

Run with:  python examples/scalability_study.py [num_users] [backend]

``backend`` is one of ``simulated`` (default, modeled makespans), ``threads``,
or ``processes`` (real wall-clock on the local machine).
"""

from __future__ import annotations

import sys

from repro import DCandMiner, DSeqMiner
from repro.datasets import amzn_forest_like, constraint

BACKEND = "simulated"


def run(miner_class, expression, sigma, dictionary, database, workers):
    miner = miner_class(expression, sigma, dictionary, num_workers=workers, cluster=BACKEND)
    result = miner.mine(database)
    return result.metrics.total_seconds, len(result)


def main(num_users: int = 2000) -> None:
    dataset = amzn_forest_like(num_users, seed=11)
    dictionary, database = dataset.preprocess()
    base_sigma = 10

    print("Data scalability (8 simulated workers), T3(sigma, 1, 5):")
    print(f"  {'fraction':>8} {'sigma':>6} {'D-SEQ (s)':>10} {'D-CAND (s)':>11} {'patterns':>9}")
    for fraction in (0.25, 0.5, 0.75, 1.0):
        sample = database.sample(fraction, seed=5) if fraction < 1.0 else database
        sigma = max(2, round(base_sigma * fraction))
        task = constraint("T3", sigma, 1, 5)
        dseq_time, patterns = run(DSeqMiner, task.expression, sigma, dictionary, sample, 8)
        dcand_time, _ = run(DCandMiner, task.expression, sigma, dictionary, sample, 8)
        print(f"  {fraction:>8.2f} {sigma:>6} {dseq_time:>10.2f} {dcand_time:>11.2f} {patterns:>9}")

    print("\nStrong scalability (100% of the data), T3(sigma, 1, 5):")
    task = constraint("T3", base_sigma, 1, 5)
    print(f"  {'workers':>8} {'D-SEQ (s)':>10} {'D-CAND (s)':>11}")
    for workers in (1, 2, 4, 8):
        dseq_time, _ = run(DSeqMiner, task.expression, base_sigma, dictionary, database, workers)
        dcand_time, _ = run(DCandMiner, task.expression, base_sigma, dictionary, database, workers)
        print(f"  {workers:>8} {dseq_time:>10.2f} {dcand_time:>11.2f}")

    if BACKEND == "simulated":
        print("\nTimes are simulated makespans of the BSP cluster model; "
              "see DESIGN.md for the substitution rationale.")
    else:
        print(f"\nTimes are in-worker stage makespans on the {BACKEND!r} backend.")


if __name__ == "__main__":
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 2000
    if len(sys.argv) > 2:
        BACKEND = sys.argv[2]
    main(size)
