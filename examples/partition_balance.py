"""Partition-balance study: why item-based partitioning scales.

Sec. III-B of the paper argues that ordering items by decreasing document
frequency produces well-balanced partitions: frequent items appear in many
input sequences, but their partitions are responsible for few distinct
subsequences and receive small (rewritten) representations.  This example
measures that claim on the AMZN-like dataset for D-SEQ and D-CAND: it reports
the largest partitions, an imbalance factor (largest / mean partition), the
Gini coefficient of partition sizes, and the share of shuffle data landing on
the most loaded of 8 workers.

Balanced *partitions* still leave the reduce-bucket layout to
``stable_hash(pivot)``, which can stack several heavy pivots into one bucket.
The second half of the study mines the same workload under both reduce
partitioners — the reference hash and the skew-aware plan
(``partitioner="planned"``) — and compares the heaviest bucket and the
modeled straggler time; the patterns are byte-identical either way.

Run with:  python examples/partition_balance.py [num_users]
"""

from __future__ import annotations

import sys

from repro.core import DSeqMiner, dcand_partition_balance, dseq_partition_balance
from repro.datasets import amzn_like, constraint
from repro.experiments import format_table


def study(name, balance, dictionary, workers=8):
    print(f"--- {name} ---")
    summary = balance.as_dict()
    summary["worker_share"] = round(balance.largest_worker_share(workers), 3)
    print(format_table([summary]))
    print("largest partitions (pivot item, bytes, records):")
    for label, size, records in balance.top(5, dictionary):
        print(f"  {label:<30} {size:>10,} bytes   {records:>6} records")
    print("partition-size histogram (bytes -> #partitions):")
    for low, high, count in balance.histogram():
        print(f"  [{low:>8,}, {high:>8,}]  {'#' * min(count, 60)} {count}")
    print()


def main(num_users: int = 2500) -> None:
    dataset = amzn_like(num_users, seed=23)
    dictionary, database = dataset.preprocess()
    task = constraint("A1", 10)
    print(
        f"Dataset: {len(database)} AMZN-like sequences; constraint {task.name} "
        f"({task.description}).\n"
    )

    dseq = dseq_partition_balance(task.expression, task.sigma, dictionary, database)
    dcand = dcand_partition_balance(task.expression, task.sigma, dictionary, database)
    study("D-SEQ (rewritten input sequences)", dseq, dictionary)
    study("D-CAND (aggregated, minimized NFAs)", dcand, dictionary)

    print(
        "Both representations keep the imbalance factor small: no single pivot "
        "partition dominates the shuffle, so adding workers keeps reducing the "
        "makespan (the near-linear scaling of Fig. 11).\n"
    )

    print("--- hash vs planned reduce partitioner (D-SEQ, 8 workers) ---")
    results = {
        partitioner: DSeqMiner(
            task.expression, task.sigma, dictionary, num_workers=8,
            partitioner=partitioner,
        ).mine(database)
        for partitioner in ("hash", "planned")
    }
    rows = []
    for partitioner, result in results.items():
        summary = result.metrics.as_dict()
        rows.append(
            {
                "partitioner": partitioner,
                "patterns": len(result),
                "shuffle_bytes": summary["shuffle_bytes"],
                "bucket_max_bytes": summary["partition_max_bytes"],
                "bucket_mean_bytes": summary["partition_mean_bytes"],
                "modeled_straggler_s": round(summary["modeled_straggler_seconds"], 6),
            }
        )
    print(format_table(rows))
    assert results["planned"].patterns() == results["hash"].patterns()
    print(
        "\nSame patterns, same shuffled bytes — the plan only moves pivots "
        "between reduce buckets.  The planner estimates per-pivot loads from "
        "a map pass and packs them largest-first (LPT), so no hash collision "
        "can stack heavy pivots into one straggler bucket."
    )


if __name__ == "__main__":
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 2500
    main(size)
