"""Recommendation example: order-aware product patterns (constraints A1–A4).

Mines an AMZN-like review dataset for sequential purchase patterns:

* A1 — up to five electronics items bought with small gaps,
* A3 — what customers buy after a digital camera (generalized to categories),
* A4 — sequences of musical-instrument purchases,

and contrasts the flexible constraints with a traditional gap/length
constraint (T3) mined by both D-SEQ and the specialised LASH-style miner.

Run with:  python examples/market_basket.py [num_users]
"""

from __future__ import annotations

import sys

from repro import mine
from repro.datasets import amzn_like, constraint
from repro.sequential import LashMiner


def main(num_users: int = 2500) -> None:
    print(f"Generating an AMZN-like review dataset with {num_users} users ...")
    dataset = amzn_like(num_users, seed=3)
    dictionary, database = dataset.preprocess()
    stats = database.statistics()
    print(
        f"  {stats.sequence_count} users, {stats.total_items} reviews, "
        f"mean sequence length {stats.mean_length:.1f}\n"
    )

    for key, sigma, description in [
        ("A1", 10, "electronics bought together (gap <= 2, up to 5 items)"),
        ("A3", 5, "categories bought after a digital camera"),
        ("A4", 5, "musical instrument purchase sequences"),
    ]:
        task = constraint(key, sigma)
        result = mine(database, dictionary, task.expression, task.sigma, algorithm="dcand")
        print(f"--- {key}: {description}")
        print(f"    {task.expression}")
        print(f"    {len(result)} frequent patterns; top 5:")
        for pattern, frequency in result.top(5, dictionary):
            print(f"      {' -> '.join(pattern):<60} {frequency}")
        print()

    # Traditional constraint: the specialised LASH-style miner and the general
    # D-SEQ algorithm produce identical results; D-SEQ pays a generalization
    # overhead but supports all of the constraints above as well.
    task = constraint("T3", 10, 1, 5)
    general = mine(database, dictionary, task.expression, task.sigma, algorithm="dseq")
    specialist = LashMiner(task.sigma, dictionary, max_gap=1, max_length=5).mine(database)
    assert dict(general) == dict(specialist)
    print("--- T3(10,1,5): traditional max-gap/max-length constraint")
    print(f"    D-SEQ and LASH agree on {len(general)} patterns")
    print(f"    simulated time: D-SEQ {general.metrics.total_seconds:.2f}s, "
          f"LASH {specialist.metrics.total_seconds:.2f}s "
          f"(generalization overhead "
          f"{general.metrics.total_seconds / max(specialist.metrics.total_seconds, 1e-9):.1f}x)")


if __name__ == "__main__":
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 2500
    main(size)
