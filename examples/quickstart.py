"""Quickstart: the paper's running example (Fig. 2) end to end.

Builds the example sequence database and item hierarchy, mines it with all
four distributed algorithms under the constraint π_ex, and prints the frequent
patterns — which match Sec. II of the paper: a1a1b (2), a1Ab (2), a1b (3).

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import Hierarchy, mine, preprocess

#: π_ex: subsequences that start with A (or a descendant) and end with b,
#: optionally generalizing the items in between.
PATTERN_EXPRESSION = ".*(A)[(.^)|.]*(b).*"


def build_running_example():
    """The sequence database and hierarchy of Fig. 2."""
    hierarchy = Hierarchy()
    hierarchy.add_edge("a1", "A")
    hierarchy.add_edge("a2", "A")
    raw_sequences = [
        ["a1", "c", "d", "c", "b"],
        ["e", "e", "a1", "e", "a1", "e", "b"],
        ["c", "d", "c", "b"],
        ["a2", "d", "b"],
        ["a1", "a1", "b"],
    ]
    return preprocess(raw_sequences, hierarchy)


def main() -> None:
    dictionary, database = build_running_example()

    print("Item frequencies (the f-list):")
    for gid, frequency in dictionary.flist():
        print(f"  f({gid}) = {frequency}")

    print(f"\nConstraint: {PATTERN_EXPRESSION}   minimum support: 2\n")
    for algorithm in ("naive", "semi-naive", "dseq", "dcand"):
        result = mine(database, dictionary, PATTERN_EXPRESSION, sigma=2, algorithm=algorithm)
        patterns = sorted(
            ((" ".join(pattern), count) for pattern, count in result.decoded(dictionary).items()),
            key=lambda item: (-item[1], item[0]),
        )
        rendered = ", ".join(f"{pattern} ({count})" for pattern, count in patterns)
        print(f"{result.algorithm or algorithm:>11}: {rendered}")
        print(
            f"{'':>11}  map {result.metrics.map_seconds * 1000:.1f} ms, "
            f"mine {result.metrics.reduce_seconds * 1000:.1f} ms, "
            f"shuffle {result.metrics.shuffle_bytes} bytes"
        )

    print("\nExpected from the paper: a1 a1 b (2), a1 A b (2), a1 b (3)")


if __name__ == "__main__":
    main()
