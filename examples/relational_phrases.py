"""Text mining example: relational phrases between entities (constraints N1–N3).

This is the motivating application of the paper's introduction: mine frequent
relational phrases such as "lives in" or "is professor" between named entities
from a text corpus, using flexible subsequence constraints that no scalable
gap/length-only miner can express.

The corpus is the NYT-like synthetic stand-in (entities generalize to
PER/ORG/LOC and ENTITY, words to lemma and part-of-speech tag).

Run with:  python examples/relational_phrases.py [num_sentences]
"""

from __future__ import annotations

import sys

from repro import DCandMiner, DSeqMiner
from repro.datasets import constraint, nyt_like


def main(num_sentences: int = 1500) -> None:
    print(f"Generating an NYT-like corpus with {num_sentences} sentences ...")
    dataset = nyt_like(num_sentences, seed=7)
    dictionary, database = dataset.preprocess()
    stats = database.statistics()
    print(
        f"  {stats.sequence_count} sentences, {stats.total_items} tokens, "
        f"{stats.unique_items} distinct items, mean length {stats.mean_length:.1f}\n"
    )

    tasks = [
        ("N1", constraint("N1", 5), "untyped relational phrases between entities"),
        ("N2", constraint("N2", 10), "typed relational phrases"),
        ("N3", constraint("N3", 5), "copular relations (ENTITY be ... NOUN)"),
    ]
    for key, task, description in tasks:
        print(f"--- {key}: {description}")
        print(f"    pattern expression: {task.expression}")
        dseq = DSeqMiner(task.expression, task.sigma, dictionary, num_workers=8)
        result = dseq.mine(database)
        print(f"    D-SEQ found {len(result)} frequent phrases "
              f"(map {result.metrics.map_seconds:.2f}s, mine {result.metrics.reduce_seconds:.2f}s)")
        for pattern, frequency in result.top(5, dictionary):
            print(f"      {' '.join(pattern):<40} {frequency}")

        # Cross-check with D-CAND: identical results, different trade-off.
        dcand = DCandMiner(task.expression, task.sigma, dictionary, num_workers=8)
        verification = dcand.mine(database)
        assert dict(verification) == dict(result), "D-SEQ and D-CAND disagree!"
        print(f"    D-CAND agrees ({len(verification)} phrases), "
              f"shuffle {verification.metrics.shuffle_bytes} vs {result.metrics.shuffle_bytes} bytes\n")


if __name__ == "__main__":
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 1500
    main(size)
