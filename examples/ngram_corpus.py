"""Building an n-gram corpus with traditional gap/length constraints.

The construction of the Google Books n-gram corpus is one of the motivating
applications in the paper: counting all n-grams up to a maximum length is
frequent sequence mining with a maximum-length constraint and no gaps (the
MG-FSM setting T2(σ, 0, n)).  This example builds a 1..4-gram corpus from the
ClueWeb-like synthetic dataset three ways — with D-SEQ, with D-CAND, and with
the specialised MG-FSM-style miner — and verifies that all three agree.

It also shows the generalized variant (N4-style): n-grams in which items are
replaced by their part-of-speech class, using the NYT-like dataset and its
word -> lemma -> POS hierarchy.

Run with:  python examples/ngram_corpus.py [num_sentences]
"""

from __future__ import annotations

import sys

from repro import mine
from repro.datasets import constraint, cw_like, nyt_like
from repro.experiments import format_table
from repro.sequential import MgFsmMiner


def plain_ngrams(num_sentences: int) -> None:
    print(f"=== 1..4-gram corpus over {num_sentences} ClueWeb-like sentences ===\n")
    dictionary, database = cw_like(num_sentences, seed=17).preprocess()
    sigma = max(5, num_sentences // 100)
    task = constraint("T2", sigma, 0, 4)  # max gap 0, max length 4

    rows = []
    results = {}
    for algorithm in ("dseq", "dcand"):
        result = mine(database, dictionary, task.expression, sigma=sigma, algorithm=algorithm)
        results[algorithm] = result.patterns()
        rows.append(
            {
                "algorithm": algorithm,
                "ngrams": len(result),
                "map_s": round(result.metrics.map_seconds, 2),
                "reduce_s": round(result.metrics.reduce_seconds, 2),
                "shuffle_bytes": result.metrics.shuffle_bytes,
            }
        )
    specialist = MgFsmMiner(sigma, dictionary, max_gap=0, max_length=4, num_workers=8)
    specialist_result = specialist.mine(database)
    rows.append(
        {
            "algorithm": "mg-fsm",
            "ngrams": len(specialist_result),
            "map_s": round(specialist_result.metrics.map_seconds, 2),
            "reduce_s": round(specialist_result.metrics.reduce_seconds, 2),
            "shuffle_bytes": specialist_result.metrics.shuffle_bytes,
        }
    )
    print(format_table(rows))

    assert results["dseq"] == results["dcand"] == specialist_result.patterns()
    print("\nAll three algorithms produce the identical n-gram corpus.\n")

    longest = max(results["dseq"], key=len)
    top = sorted(results["dseq"].items(), key=lambda kv: -kv[1])[:5]
    print("Most frequent n-grams:")
    for pattern, frequency in top:
        print(f"  {' '.join(dictionary.decode(pattern)):<40} {frequency}")
    print(f"Longest frequent n-gram: {' '.join(dictionary.decode(longest))}\n")


def generalized_ngrams(num_sentences: int) -> None:
    print(f"=== Generalized 3-grams (N4 style) over {num_sentences} NYT-like sentences ===\n")
    dictionary, database = nyt_like(num_sentences, seed=17).preprocess()
    sigma = max(10, num_sentences // 20)
    task = constraint("N4", sigma)
    result = mine(database, dictionary, task.expression, sigma=sigma, algorithm="dcand")
    print(f"constraint {task.name}: {len(result)} generalized 3-grams before a noun")
    for pattern, frequency in result.top(5, dictionary):
        print(f"  {' '.join(pattern):<40} {frequency}")
    print()


def main(num_sentences: int = 1500) -> None:
    plain_ngrams(num_sentences)
    generalized_ngrams(max(400, num_sentences // 3))


if __name__ == "__main__":
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 1500
    main(size)
